package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const multiCoreOut = `goos: linux
cpu: Test CPU
BenchmarkFoo-8           	       1	  100000 ns/op	 123 B/op	 4 allocs/op
BenchmarkFoo-8           	       1	  120000 ns/op	 123 B/op	 4 allocs/op
BenchmarkIngestConvert/serial-8  	 1	 9000000 ns/op
BenchmarkIngestConvert/sharded-8 	 1	 3000000 ns/op
PASS
`

func TestParseBenchFile(t *testing.T) {
	bf, err := parseBenchFile(writeBench(t, "b.txt", multiCoreOut))
	if err != nil {
		t.Fatal(err)
	}
	if bf.CPU != "Test CPU" || bf.MaxProcs != 8 {
		t.Fatalf("parsed cpu %q maxprocs %d", bf.CPU, bf.MaxProcs)
	}
	// -count repeats collapse to the minimum ns/op; the -8 suffix strips.
	if ns := bf.NsPerOp["BenchmarkFoo"]; ns != 100000 {
		t.Fatalf("BenchmarkFoo ns/op = %v, want min 100000", ns)
	}
	if _, ok := bf.NsPerOp["BenchmarkIngestConvert/sharded"]; !ok {
		t.Fatalf("sub-benchmark missing: %v", bf.NsPerOp)
	}
	if _, err := parseBenchFile(writeBench(t, "empty.txt", "PASS\n")); err == nil {
		t.Fatal("file without results must error")
	}
}

func TestEvalSpeedup(t *testing.T) {
	bf, err := parseBenchFile(writeBench(t, "b.txt", multiCoreOut))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := evalSpeedup(bf, "BenchmarkIngestConvert/serial,BenchmarkIngestConvert/sharded,1.5")
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Enforced || !sp.Pass || sp.Ratio != 3 {
		t.Fatalf("speedup = %+v, want enforced pass at 3x", sp)
	}
	if _, err := evalSpeedup(bf, "nope"); err == nil {
		t.Fatal("malformed spec must error")
	}
	if _, err := evalSpeedup(bf, "BenchmarkMissing,BenchmarkFoo,1.5"); err == nil {
		t.Fatal("unknown benchmark must error")
	}

	// Single-core runs never enforce the ratio.
	single, err := parseBenchFile(writeBench(t, "s.txt",
		"cpu: Test CPU\nBenchmarkA 1 100 ns/op\nBenchmarkB 1 100 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	sp, err = evalSpeedup(single, "BenchmarkA,BenchmarkB,1.5")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Enforced || !sp.Pass {
		t.Fatalf("single-core speedup = %+v, want skipped", sp)
	}

	// ...unless the spec demands enforcement on any core count.
	sp, err = evalSpeedup(single, "BenchmarkA,BenchmarkB,1.5,always")
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Enforced || sp.Pass {
		t.Fatalf("always-speedup on single core = %+v, want enforced fail", sp)
	}
	if _, err := evalSpeedup(single, "BenchmarkA,BenchmarkB,1.5,sometimes"); err == nil {
		t.Fatal("unknown trailing token must error")
	}
}

func TestRunCompareGates(t *testing.T) {
	base := writeBench(t, "base.txt", multiCoreOut)
	regressed := writeBench(t, "cur.txt", `cpu: Test CPU
BenchmarkFoo-8  1  130000 ns/op
`)
	if code := runCompare(base, regressed, 0.20, 0.20, nil, ""); code != 1 {
		t.Fatalf("30%% regression returned %d, want 1", code)
	}
	if code := runCompare(base, regressed, 0.35, 0.20, nil, ""); code != 0 {
		t.Fatalf("regression within tolerance returned %d, want 0", code)
	}

	// Different hardware: the ns/op gate disarms.
	otherCPU := writeBench(t, "other.txt", `cpu: Other CPU
BenchmarkFoo-8  1  900000 ns/op
`)
	if code := runCompare(base, otherCPU, 0.20, 0.20, nil, ""); code != 0 {
		t.Fatalf("hardware mismatch returned %d, want 0 (gate skipped)", code)
	}

	// JSON artifact lands on disk; multiple -speedup specs all evaluate.
	out := filepath.Join(t.TempDir(), "BENCH_PR1.json")
	specs := []string{
		"BenchmarkIngestConvert/serial,BenchmarkIngestConvert/sharded,1.5",
		"BenchmarkIngestConvert/serial,BenchmarkFoo,2",
	}
	if code := runCompare(base, base, 0.20, 0.20, specs, out); code != 0 {
		t.Fatalf("self-compare returned %d, want 0", code)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("missing JSON artifact: %v", err)
	}

	// One failing spec among several fails the run.
	failing := []string{
		"BenchmarkIngestConvert/serial,BenchmarkIngestConvert/sharded,1.5",
		"BenchmarkIngestConvert/sharded,BenchmarkIngestConvert/serial,1.5", // inverted: ratio 1/3
	}
	if code := runCompare(base, base, 0.20, 0.20, failing, ""); code != 1 {
		t.Fatalf("failing speedup spec returned %d, want 1", code)
	}
}

// TestAllocGate covers the allocs/op regression gate: it parses the
// -benchmem columns, stays armed across CPU *and* GOMAXPROCS changes
// (allocation counts do not depend on the clock, and the benchmarks fix
// their worker counts, so a single-core baseline still guards multi-core
// CI runs), and fails on >tolerance allocation growth.
func TestAllocGate(t *testing.T) {
	bf, err := parseBenchFile(writeBench(t, "b.txt", multiCoreOut))
	if err != nil {
		t.Fatal(err)
	}
	if a := bf.AllocsPerOp["BenchmarkFoo"]; a != 4 {
		t.Fatalf("BenchmarkFoo allocs/op = %v, want 4", a)
	}
	if b := bf.BytesPerOp["BenchmarkFoo"]; b != 123 {
		t.Fatalf("BenchmarkFoo B/op = %v, want 123", b)
	}
	if _, ok := bf.AllocsPerOp["BenchmarkIngestConvert/serial"]; ok {
		t.Fatal("benchmark without -benchmem columns must not carry allocs")
	}

	base := writeBench(t, "base.txt", multiCoreOut)
	// Same ns/op, 2x the allocations, on different hardware: only the
	// alloc gate can fail — and it must, despite the CPU change.
	allocRegressed := writeBench(t, "alloc.txt", `cpu: Other CPU
BenchmarkFoo-8  1  100000 ns/op  246 B/op  8 allocs/op
`)
	if code := runCompare(base, allocRegressed, 0.20, 0.20, nil, ""); code != 1 {
		t.Fatalf("2x allocation regression returned %d, want 1", code)
	}
	if code := runCompare(base, allocRegressed, 0.20, 1.5, nil, ""); code != 0 {
		t.Fatalf("allocation growth within tolerance returned %d, want 0", code)
	}

	// Different GOMAXPROCS: the gate must still fire — a single-core
	// baseline guards multi-core CI runs (the time gate disarms, the
	// alloc gate does not).
	otherProcs := writeBench(t, "procs.txt", `cpu: Other CPU
BenchmarkFoo-4  1  100000 ns/op  246 B/op  8 allocs/op
`)
	if code := runCompare(base, otherProcs, 0.20, 0.20, nil, ""); code != 1 {
		t.Fatalf("GOMAXPROCS mismatch returned %d, want 1 (alloc gate stays armed)", code)
	}

	// A zero-alloc baseline gaining any allocation is an unbounded
	// regression — the gate must fire rather than divide by zero or skip.
	zeroBase := writeBench(t, "zero.txt", `cpu: Test CPU
BenchmarkFoo-8  1  100000 ns/op  0 B/op  0 allocs/op
`)
	if code := runCompare(zeroBase, allocRegressed, 0.20, 0.20, nil, ""); code != 1 {
		t.Fatalf("0 -> 8 allocs/op returned %d, want 1", code)
	}
	if code := runCompare(zeroBase, zeroBase, 0.20, 0.20, nil, ""); code != 0 {
		t.Fatalf("0 -> 0 allocs/op returned %d, want 0", code)
	}

	// Runs without any -benchmem data disarm the gate (and say so).
	noMem := writeBench(t, "nomem.txt", `cpu: Test CPU
BenchmarkFoo-8  1  100000 ns/op
`)
	if code := runCompare(noMem, allocRegressed, 0.20, 0.20, nil, ""); code != 0 {
		t.Fatalf("baseline without -benchmem returned %d, want 0 (gate disarmed)", code)
	}

	// The artifact document carries the alloc columns and the regression.
	out := filepath.Join(t.TempDir(), "BENCH_ALLOC.json")
	if code := runCompare(base, allocRegressed, 0.20, 0.20, nil, out); code != 1 {
		t.Fatalf("alloc regression with artifact returned %d, want 1", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"alloc_gate_armed": true`, `"alloc_regressed": true`, `"BenchmarkFoo (allocs/op)"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("artifact missing %q:\n%s", want, data)
		}
	}
}
