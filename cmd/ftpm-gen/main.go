// Command ftpm-gen writes the synthetic evaluation datasets (NIST,
// UKDALE, DataPort, SmartCity — see internal/datagen and DESIGN.md §3) as
// symbolic CSV files, so they can be inspected or replayed through the
// ftpm CLI.
//
// Usage:
//
//	ftpm-gen -dataset NIST -scale 0.05 -out nist.csv
//	ftpm-gen -dataset SmartCity -scale 0.1 -attrs 0.5 -out city.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"ftpm/internal/csvio"
	"ftpm/internal/datagen"
)

func main() {
	var (
		name  = flag.String("dataset", "NIST", "dataset profile: NIST, UKDALE, DataPort, SmartCity")
		scale = flag.Float64("scale", 0.05, "fraction of the paper's sequence count")
		attrs = flag.Float64("attrs", 1.0, "fraction of variables to keep")
		mult  = flag.Int("mult", 1, "sequence multiplier (scalability datasets use 4)")
		out   = flag.String("out", "", "output CSV path (default stdout)")
		info  = flag.Bool("info", false, "print Table IV style characteristics instead of CSV")
	)
	flag.Parse()

	p, err := datagen.ByName(*name)
	if err != nil {
		fail(err)
	}
	opt := datagen.Options{SequenceFraction: *scale, AttributeFraction: *attrs, SizeMultiplier: *mult}

	if *info {
		db, _, err := p.Build(opt)
		if err != nil {
			fail(err)
		}
		st := db.Stats()
		fmt.Printf("dataset: %s (scale %.3f, attrs %.2f, mult %d)\n", p.Name, *scale, *attrs, *mult)
		fmt.Printf("# of sequences:              %d\n", st.NumSequences)
		fmt.Printf("# of variables:              %d\n", st.NumVariables)
		fmt.Printf("# of distinct events:        %d\n", st.NumDistinctEvents)
		fmt.Printf("avg # of instances/sequence: %.0f\n", st.AvgInstancesPerSeq)
		return
	}

	sdb, err := p.Generate(opt)
	if err != nil {
		fail(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := csvio.WriteSymbolic(w, sdb); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ftpm-gen: %v\n", err)
	os.Exit(1)
}
