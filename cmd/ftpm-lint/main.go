// Command ftpm-lint runs the repository's invariant analyzers
// (internal/lint) over Go packages. It is a go/analysis multichecker
// with two faces:
//
//   - Invoked with package patterns — `go run ./cmd/ftpm-lint ./...` —
//     it re-executes itself under `go vet -vettool`, which handles
//     package loading, build tags, and test files, and exits non-zero
//     if any analyzer reports a diagnostic.
//
//   - Invoked by the go command itself (go vet passes -V=full, -flags,
//     or a *.cfg file), it behaves as a unitchecker plugin.
//
// The analyzers and their invariants are documented in internal/lint.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"ftpm/internal/lint"
)

func main() {
	args := os.Args[1:]
	if invokedByGoVet(args) {
		unitchecker.Main(lint.Analyzers()...) // does not return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args))
}

// invokedByGoVet reports whether the go command is driving us as a
// vet tool: it probes with -V=full (version) and -flags (flag schema),
// then invokes the tool once per package with a vet config file.
func invokedByGoVet(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// runStandalone re-executes the current binary as `go vet -vettool`,
// letting the go command do package loading, and returns the exit code
// to propagate (non-zero when diagnostics were reported).
func runStandalone(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftpm-lint: cannot locate own binary: %v\n", err)
		return 2
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "ftpm-lint: %v\n", err)
		return 2
	}
	return 0
}
