package ftpm_test

import (
	"context"
	"strings"
	"testing"

	"ftpm"
	"ftpm/internal/paperex"
)

// tableIDB builds the paper's Table I database through the public API.
func tableIDB(t *testing.T) *ftpm.SymbolicDB {
	t.Helper()
	series := make([]*ftpm.SymbolicSeries, 0, len(paperex.Rows))
	for _, r := range paperex.Rows {
		s, err := ftpm.ParseSymbols(r.Name, paperex.Start, paperex.Step, paperex.Alphabet, r.Data)
		if err != nil {
			t.Fatal(err)
		}
		series = append(series, s)
	}
	db, err := ftpm.NewSymbolicDB(series...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestEndToEndExact(t *testing.T) {
	db := tableIDB(t)
	res, err := ftpm.MineSymbolic(context.Background(), db, ftpm.Options{
		MinSupport:    0.7,
		MinConfidence: 0.7,
		NumWindows:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Singles) != 11 {
		t.Errorf("frequent singles = %d, want 11 (paper Fig 4)", len(res.Singles))
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns mined")
	}
	for _, p := range res.Patterns {
		d := res.Describe(p)
		if !strings.Contains(d, "=") || !strings.Contains(d, "[") {
			t.Errorf("Describe output unexpected: %q", d)
		}
		if p.RelSupport < 0.7 || p.Confidence < 0.7 {
			t.Errorf("threshold violated: %+v", p)
		}
	}
}

func TestEndToEndApprox(t *testing.T) {
	db := tableIDB(t)
	exact, err := ftpm.MineSymbolic(context.Background(), db, ftpm.Options{MinSupport: 0.5, MinConfidence: 0.5, NumWindows: 4})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := ftpm.MineSymbolic(context.Background(), db, ftpm.Options{
		MinSupport:    0.5,
		MinConfidence: 0.5,
		NumWindows:    4,
		Approx:        &ftpm.ApproxOptions{Density: 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if approx.Graph == nil || approx.Mu <= 0 {
		t.Fatal("approx run must expose the correlation graph and µ")
	}
	// Fig 5: at 40% density the correlated set is {C, K, M, T}.
	verts := approx.Graph.Vertices()
	if len(verts) != 4 {
		t.Errorf("correlated series = %v, want C,K,M,T", verts)
	}
	if len(approx.Patterns) > len(exact.Patterns) {
		t.Error("A-HTPGM can only prune")
	}
	acc := ftpm.Accuracy(approx, exact)
	if acc <= 0 || acc > 1 {
		t.Errorf("accuracy = %v", acc)
	}
	// All approx patterns must be exact patterns.
	ex := map[string]bool{}
	for _, p := range exact.Patterns {
		ex[p.Pattern.Key()] = true
	}
	for _, p := range approx.Patterns {
		if !ex[p.Pattern.Key()] {
			t.Fatalf("invented pattern %v", p.Pattern)
		}
	}
}

func TestApproxValidation(t *testing.T) {
	db := tableIDB(t)
	if _, err := ftpm.MineSymbolic(context.Background(), db, ftpm.Options{
		MinSupport: 0.5, NumWindows: 4,
		Approx: &ftpm.ApproxOptions{},
	}); err == nil {
		t.Error("empty ApproxOptions must error")
	}
	if _, err := ftpm.MineSymbolic(context.Background(), db, ftpm.Options{
		MinSupport: 0.5, NumWindows: 4,
		Approx: &ftpm.ApproxOptions{Mu: 0.4, Density: 0.4},
	}); err == nil {
		t.Error("both Mu and Density must error")
	}
	seqdb, err := ftpm.BuildSequences(db, ftpm.SplitOptions{NumWindows: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ftpm.Mine(context.Background(), seqdb, ftpm.Options{
		MinSupport: 0.5,
		Approx:     &ftpm.ApproxOptions{Mu: 0.4},
	}); err == nil {
		t.Error("Mine must reject Approx (needs the symbolic database)")
	}
}

func TestMineOnSequenceDB(t *testing.T) {
	db := tableIDB(t)
	seqdb, err := ftpm.BuildSequences(db, ftpm.SplitOptions{NumWindows: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ftpm.Mine(context.Background(), seqdb, ftpm.Options{MinSupport: 0.7, MinConfidence: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Singles) != 11 {
		t.Errorf("singles = %d, want 11", len(res.Singles))
	}
}

func TestNumericPipeline(t *testing.T) {
	// The §III-A example: values over 0.5 are On.
	x, err := ftpm.NewTimeSeries("X", 0, 300, []float64{1.61, 1.21, 0.41, 0.0})
	if err != nil {
		t.Fatal(err)
	}
	y, _ := ftpm.NewTimeSeries("Y", 0, 300, []float64{0.0, 0.9, 0.9, 0.0})
	sdb, err := ftpm.Symbolize([]*ftpm.TimeSeries{x, y}, func(string) ftpm.Symbolizer {
		return ftpm.OnOff(0.5)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sdb.Find("X").SymbolAt(0) != "On" || sdb.Find("X").SymbolAt(3) != "Off" {
		t.Error("threshold symbolization wrong")
	}
	res, err := ftpm.MineSymbolic(context.Background(), sdb, ftpm.Options{MinSupport: 1, MinConfidence: 0, NumWindows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Error("expected at least one pattern (X=On overlaps Y=On)")
	}
}

func TestQuantileSymbolizerAPI(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	q, err := ftpm.Quantile(vals, []float64{25, 50, 75}, []string{"Low", "Mid", "High", "Peak"})
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Alphabet()[q.Symbolize(99)]; got != "Peak" {
		t.Errorf("Symbolize(99) = %s", got)
	}
}

func TestCorrelationGraphAPI(t *testing.T) {
	db := tableIDB(t)
	g, mu, err := ftpm.CorrelationGraphByDensity(db, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if mu <= 0 || g.NumEdges() != 6 {
		t.Errorf("density graph: mu=%v edges=%d, want 6 edges", mu, g.NumEdges())
	}
	g2, err := ftpm.CorrelationGraphAt(db, mu)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Error("CorrelationGraphAt(µ) must match the density-derived graph")
	}
	// Density 0 — the sweep endpoint — stays usable and yields the empty
	// graph (no perfectly correlated pairs in Table I).
	g0, mu0, err := ftpm.CorrelationGraphByDensity(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g0.NumEdges() != 0 || mu0 <= 0 {
		t.Errorf("density-0 graph: mu=%v edges=%d, want empty", mu0, g0.NumEdges())
	}
	k := db.Find("K")
	tt := db.Find("T")
	v, err := ftpm.NMI(k, tt)
	if err != nil || v < 0.41 || v > 0.44 {
		t.Errorf("NMI(K;T) = %v, want ≈0.42 (paper §V-A)", v)
	}
	lb, err := ftpm.ConfidenceLowerBound(0.4, 0.5, 0.42, 2)
	if err != nil || lb <= 0 || lb > 1 {
		t.Errorf("ConfidenceLowerBound = %v, %v", lb, err)
	}
}

func TestOverlapPreservesPatterns(t *testing.T) {
	// Fig 3: with window overlap t_ov, patterns crossing a boundary are
	// preserved. Construct a 4-event chain that a non-overlapping split
	// cuts in half.
	a, _ := ftpm.ParseSymbols("A", 0, 10, []string{"Off", "On"}, "Off Off Off On Off Off Off Off Off Off Off Off")
	b, _ := ftpm.ParseSymbols("B", 0, 10, []string{"Off", "On"}, "Off Off Off Off On Off Off Off Off Off Off Off")
	c, _ := ftpm.ParseSymbols("C", 0, 10, []string{"Off", "On"}, "Off Off Off Off Off Off Off On Off Off Off Off")
	d, _ := ftpm.ParseSymbols("D", 0, 10, []string{"Off", "On"}, "Off Off Off Off Off Off Off Off On Off Off Off")
	sdb, err := ftpm.NewSymbolicDB(a, b, c, d)
	if err != nil {
		t.Fatal(err)
	}
	count4 := func(opt ftpm.Options) int {
		opt.MinSupport = 0.01
		opt.MinConfidence = 0
		res, err := ftpm.MineSymbolic(context.Background(), sdb, opt)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, p := range res.Patterns {
			if p.Pattern.K() == 4 {
				onCount := 0
				for _, e := range p.Pattern.Events {
					if res.DB.Vocab.Def(e).Symbol == "On" {
						onCount++
					}
				}
				if onCount == 4 {
					n++
				}
			}
		}
		return n
	}
	// Split at sample 6: the boundary falls between B=On (sample 4) and
	// C=On (sample 7); without overlap the 4-On pattern is lost.
	without := count4(ftpm.Options{WindowLength: 60})
	with := count4(ftpm.Options{WindowLength: 60, Overlap: 50})
	if without != 0 {
		t.Errorf("non-overlapping split unexpectedly preserved the pattern (%d)", without)
	}
	if with == 0 {
		t.Error("overlapping split must preserve the 4-event pattern (Fig 3)")
	}
}

func TestEventLevelApproxAPI(t *testing.T) {
	db := tableIDB(t)
	exact, err := ftpm.MineSymbolic(context.Background(), db, ftpm.Options{MinSupport: 0.5, MinConfidence: 0.5, NumWindows: 4})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := ftpm.MineSymbolic(context.Background(), db, ftpm.Options{
		MinSupport:    0.5,
		MinConfidence: 0.5,
		NumWindows:    4,
		Approx:        &ftpm.ApproxOptions{Density: 0.3, EventLevel: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev.EventGraph == nil || ev.Graph != nil {
		t.Fatal("event-level run must expose the event graph only")
	}
	if len(ev.Patterns) > len(exact.Patterns) {
		t.Error("event-level pruning can only remove patterns")
	}
	ex := map[string]bool{}
	for _, p := range exact.Patterns {
		ex[p.Pattern.Key()] = true
	}
	for _, p := range ev.Patterns {
		if !ex[p.Pattern.Key()] {
			t.Fatalf("invented pattern %v", p.Pattern)
		}
	}
}

func TestWorkersOptionAPI(t *testing.T) {
	db := tableIDB(t)
	opt := ftpm.Options{MinSupport: 0.5, MinConfidence: 0.5, NumWindows: 4, MaxPatternSize: 3}
	serial, err := ftpm.MineSymbolic(context.Background(), db, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	par, err := ftpm.MineSymbolic(context.Background(), db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Patterns) != len(serial.Patterns) {
		t.Fatalf("workers changed results: %d vs %d", len(par.Patterns), len(serial.Patterns))
	}
	for i := range par.Patterns {
		if par.Patterns[i].Pattern.Key() != serial.Patterns[i].Pattern.Key() {
			t.Fatal("workers changed pattern order")
		}
	}
}

func TestMaximalAPI(t *testing.T) {
	db := tableIDB(t)
	res, err := ftpm.MineSymbolic(context.Background(), db, ftpm.Options{
		MinSupport: 0.7, MinConfidence: 0.7, NumWindows: 4, MaxPatternSize: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	max := res.Maximal()
	if len(max) == 0 || len(max) > len(res.Patterns) {
		t.Fatalf("maximal = %d of %d", len(max), len(res.Patterns))
	}
	// No maximal pattern may be a sub-pattern of another maximal one.
	for i, p := range max {
		for j, q := range max {
			if i != j && p.Pattern.K() < q.Pattern.K() && p.Pattern.SubPatternOf(q.Pattern) {
				t.Fatalf("maximal set contains nested patterns")
			}
		}
	}
	// Every non-maximal pattern must be contained in some mined pattern
	// one size up.
	inMax := map[string]bool{}
	for _, p := range max {
		inMax[p.Pattern.Key()] = true
	}
	for _, p := range res.Patterns {
		if inMax[p.Pattern.Key()] {
			continue
		}
		found := false
		for _, q := range res.Patterns {
			if q.Pattern.K() == p.Pattern.K()+1 && p.Pattern.SubPatternOf(q.Pattern) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("non-maximal pattern %v has no superpattern", p.Pattern)
		}
	}
}

func TestShardedOptionsAPI(t *testing.T) {
	db := tableIDB(t)
	opt := ftpm.Options{MinSupport: 0.5, MinConfidence: 0.5, NumWindows: 4}
	want, err := ftpm.MineSymbolic(context.Background(), db, opt)
	if err != nil {
		t.Fatal(err)
	}

	// MineSymbolic with Options.Shards must match the unsharded run
	// pattern for pattern, including the rendered samples.
	for _, k := range []int{2, 3, 8} {
		opt.Shards = k
		got, err := ftpm.MineSymbolic(context.Background(), db, opt)
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		if got.Stats.Shards != k {
			t.Fatalf("shards=%d: stats report %d shards", k, got.Stats.Shards)
		}
		if len(got.Patterns) != len(want.Patterns) {
			t.Fatalf("shards=%d: %d patterns, want %d", k, len(got.Patterns), len(want.Patterns))
		}
		for i := range got.Patterns {
			if got.Patterns[i].Support != want.Patterns[i].Support ||
				got.Patterns[i].Pattern.Key() != want.Patterns[i].Pattern.Key() {
				t.Fatalf("shards=%d: pattern %d differs", k, i)
			}
			if got.Describe(got.Patterns[i]) != want.Describe(want.Patterns[i]) {
				t.Fatalf("shards=%d: sample rendering differs for pattern %d", k, i)
			}
		}
	}

	// The explicit prebuilt-shard entry points round-trip the same way.
	shards, err := ftpm.BuildShardedSequences(db, ftpm.SplitOptions{NumWindows: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	merged, _, err := ftpm.MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Size() != want.DB.Size() {
		t.Fatalf("merged %d sequences, want %d", merged.Size(), want.DB.Size())
	}
	res, err := ftpm.MineSharded(context.Background(), shards, ftpm.Options{MinSupport: 0.5, MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != len(want.Patterns) {
		t.Fatalf("MineSharded: %d patterns, want %d", len(res.Patterns), len(want.Patterns))
	}

	// A-HTPGM composes with sharding: the correlation filter gates
	// candidates, not sequences.
	approx, err := ftpm.MineSymbolic(context.Background(), db, ftpm.Options{
		MinSupport: 0.5, MinConfidence: 0.5, NumWindows: 4, Shards: 2,
		Approx: &ftpm.ApproxOptions{Mu: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if approx.Graph == nil || approx.Stats.Shards != 2 {
		t.Fatalf("sharded approx run missing graph or shard stats: %+v", approx.Stats)
	}

	// MineSharded is exact-only.
	if _, err := ftpm.MineSharded(context.Background(), shards, ftpm.Options{
		MinSupport: 0.5, Approx: &ftpm.ApproxOptions{Mu: 0.5},
	}); err == nil {
		t.Fatal("MineSharded must reject Approx")
	}
}
