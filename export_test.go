package ftpm_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"ftpm"
)

func TestExportJSON(t *testing.T) {
	db := tableIDB(t)
	res, err := ftpm.MineSymbolic(context.Background(), db, ftpm.Options{
		MinSupport: 0.7, MinConfidence: 0.7, NumWindows: 4, MaxPatternSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc ftpm.ResultJSON
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.Sequences != 4 || doc.AbsoluteSupport != 3 {
		t.Errorf("header wrong: %+v", doc)
	}
	if len(doc.Singles) != 11 {
		t.Errorf("singles = %d, want 11", len(doc.Singles))
	}
	if len(doc.Patterns) != len(res.Patterns) {
		t.Errorf("patterns = %d, want %d", len(doc.Patterns), len(res.Patterns))
	}
	for _, p := range doc.Patterns {
		if p.K != len(p.Events) {
			t.Errorf("k=%d but %d events", p.K, len(p.Events))
		}
		if len(p.Triples) != p.K*(p.K-1)/2 {
			t.Errorf("triple count wrong for k=%d: %d", p.K, len(p.Triples))
		}
		for _, tr := range p.Triples {
			switch tr.Relation {
			case "follow", "contain", "overlap":
			default:
				t.Errorf("bad relation name %q", tr.Relation)
			}
			if !strings.Contains(tr.A, "=") || !strings.Contains(tr.B, "=") {
				t.Errorf("events must be name-resolved: %+v", tr)
			}
		}
		if len(p.Sample) != p.K {
			t.Errorf("sample must cover all roles, got %d of %d", len(p.Sample), p.K)
		}
		for _, iv := range p.Sample {
			if iv.End < iv.Start {
				t.Errorf("sample interval inverted: %+v", iv)
			}
		}
	}
}

func TestExportJSONApproxCarriesMu(t *testing.T) {
	db := tableIDB(t)
	res, err := ftpm.MineSymbolic(context.Background(), db, ftpm.Options{
		MinSupport: 0.7, MinConfidence: 0.7, NumWindows: 4,
		Approx: &ftpm.ApproxOptions{Density: 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := res.Document()
	if doc.Mu <= 0 {
		t.Errorf("µ missing from export: %v", doc.Mu)
	}
}

func TestExportJSONRequiresDB(t *testing.T) {
	r := &ftpm.Result{}
	if err := r.ExportJSON(&bytes.Buffer{}); err == nil {
		t.Error("export without a database must error")
	}
}
