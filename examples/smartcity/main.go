// Smartcity demonstrates multi-state quantile symbolization and A-HTPGM
// on a simulated weather / vehicle-collision scenario, the paper's second
// application domain (§VI): weather variables are discretized at
// percentile cut points into 3-5 states, collision severity reacts to
// extreme weather with a lag, and mining surfaces associations like
// "Strong Wind → High Motorist Injury" (paper Table VI, P12-P17) — rare
// patterns with low support but high confidence.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"ftpm"
)

const (
	hours = 24 * 120 // 120 days of hourly samples
	step  = 3600
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// 1. Simulate weather drivers and collision reactions.
	wind := make([]float64, hours)     // m/s
	rain := make([]float64, hours)     // mm/h
	temp := make([]float64, hours)     // °C
	visib := make([]float64, hours)    // km
	injuries := make([]float64, hours) // injuries/hour
	storm := 0
	for i := 0; i < hours; i++ {
		if storm == 0 && rng.Float64() < 0.01 {
			storm = 4 + rng.Intn(10) // a storm front lasting 4-13 hours
		}
		base := 3 + 2*rng.Float64()
		if storm > 0 {
			storm--
			wind[i] = 15 + 10*rng.Float64()
			rain[i] = 5 + 10*rng.Float64()
			visib[i] = 0.5 + rng.Float64()
		} else {
			wind[i] = base
			rain[i] = rng.Float64()
			visib[i] = 8 + 2*rng.Float64()
		}
		temp[i] = 10 + 10*absSin(float64(i%24)/24) + 4*rng.Float64()
		// Collisions follow bad weather with a one-hour lag.
		risk := 0.5
		if i > 0 && wind[i-1] > 12 {
			risk += 2.5
		}
		if i > 0 && visib[i-1] < 2 {
			risk += 2
		}
		injuries[i] = risk * (0.5 + rng.Float64())
	}

	mk := func(name string, v []float64) *ftpm.TimeSeries {
		s, err := ftpm.NewTimeSeries(name, 0, step, v)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	series := []*ftpm.TimeSeries{
		mk("Wind", wind), mk("Rain", rain), mk("Temperature", temp),
		mk("Visibility", visib), mk("MotoristInjury", injuries),
	}

	// 2. Quantile symbolization: each variable gets its own percentile
	// alphabet, like the paper's temperature {VeryCold..VeryHot} example.
	mappers := map[string]ftpm.Symbolizer{}
	mustQ := func(name string, v []float64, pcts []float64, labels []string) {
		q, err := ftpm.Quantile(v, pcts, labels)
		if err != nil {
			log.Fatal(err)
		}
		mappers[name] = q
	}
	mustQ("Wind", wind, []float64{50, 85, 97}, []string{"Calm", "Breeze", "Strong", "VeryStrong"})
	mustQ("Rain", rain, []float64{60, 90}, []string{"Dry", "Drizzle", "HeavyRain"})
	mustQ("Temperature", temp, []float64{10, 25, 50, 75}, []string{"VeryCold", "Cold", "Mild", "Hot", "VeryHot"})
	mustQ("Visibility", visib, []float64{5, 15}, []string{"Unclear", "Hazy", "Clear"})
	mustQ("MotoristInjury", injuries, []float64{50, 80, 95}, []string{"None", "Low", "Medium", "High"})

	sdb, err := ftpm.Symbolize(series, func(name string) ftpm.Symbolizer { return mappers[name] })
	if err != nil {
		log.Fatal(err)
	}

	// 3. A-HTPGM over 12-hour windows with 2-hour overlap: prune
	// uncorrelated variables via the correlation graph, then mine.
	res, err := ftpm.MineSymbolic(context.Background(), sdb, ftpm.Options{
		MinSupport:     0.03, // rare but confident patterns (paper: P12-P17)
		MinConfidence:  0.3,
		WindowLength:   12 * step,
		Overlap:        2 * step,
		MaxPatternSize: 3,
		Approx:         &ftpm.ApproxOptions{Density: 0.6},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("A-HTPGM at µ=%.2f; correlated variables: %v\n",
		res.Mu, res.Graph.Vertices())
	fmt.Printf("%d sequences, %d patterns\n\n", res.Stats.Sequences, len(res.Patterns))

	// 4. Print weather → injury associations: patterns that end in a
	// non-None injury state.
	type row struct {
		p     ftpm.PatternInfo
		score float64
	}
	var assoc []row
	for _, p := range res.Patterns {
		hasInjury, hasWeather := false, false
		for _, e := range p.Pattern.Events {
			def := res.DB.Vocab.Def(e)
			switch {
			case def.Series == "MotoristInjury" && (def.Symbol == "Medium" || def.Symbol == "High"):
				hasInjury = true
			case def.Series != "MotoristInjury" && def.Symbol != "Dry" && def.Symbol != "Calm" &&
				def.Symbol != "Clear" && def.Symbol != "None":
				hasWeather = true
			}
		}
		if hasInjury && hasWeather {
			assoc = append(assoc, row{p, p.Confidence + float64(p.Pattern.K())})
		}
	}
	sort.Slice(assoc, func(i, j int) bool { return assoc[i].score > assoc[j].score })
	fmt.Println("weather → collision associations (rare, high confidence):")
	max := 10
	if len(assoc) < max {
		max = len(assoc)
	}
	for _, r := range assoc[:max] {
		fmt.Printf("  supp=%4.1f%% conf=%3.0f%%  %s\n",
			r.p.RelSupport*100, r.p.Confidence*100, r.p.Pattern.FormatChain(res.DB.Vocab))
	}
}

func absSin(x float64) float64 {
	// Cheap day curve without importing math for one call: triangle wave.
	if x < 0.5 {
		return 2 * x
	}
	return 2 * (1 - x)
}
