// Energy demonstrates the full numeric pipeline on a simulated smart-home
// scenario, the paper's motivating use case (§I, Fig 1): appliance power
// readings are symbolized with the On/Off threshold mapper (§VI-A2), the
// symbolic database is split into overlapping daily sequences, and the
// miner extracts routines such as "kitchen lights contain kettle use,
// then the toaster follows" — the kind of insight that enables smart-home
// automation like pre-heating water before the 6:00 shower.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"ftpm"
)

const (
	days          = 60
	samplesPerDay = 96 // 15-minute readings
	step          = 900
)

// appliance simulates a power draw profile: a base load plus usage bursts
// around preferred hours.
type appliance struct {
	name      string
	watts     float64
	hours     []int   // preferred start hours
	onChance  float64 // chance the routine happens on a given day
	duration  int     // samples the appliance stays on
	lagOffset int     // samples after the hour it typically starts
}

func main() {
	rng := rand.New(rand.NewSource(6))
	appliances := []appliance{
		{"KitchenLights", 40, []int{6, 18}, 0.9, 6, 0},
		{"Kettle", 2000, []int{6, 18}, 0.8, 1, 1},
		{"Toaster", 900, []int{6}, 0.7, 1, 2},
		{"Microwave", 1100, []int{18}, 0.6, 1, 3},
		{"WashingMachine", 500, []int{20}, 0.3, 8, 0},
		{"TV", 120, []int{19}, 0.85, 12, 1},
	}

	// 1. Simulate numeric power readings.
	var series []*ftpm.TimeSeries
	for _, a := range appliances {
		values := make([]float64, days*samplesPerDay)
		for d := 0; d < days; d++ {
			for _, h := range a.hours {
				if rng.Float64() > a.onChance {
					continue
				}
				start := d*samplesPerDay + h*4 + a.lagOffset + rng.Intn(2)
				for i := 0; i < a.duration; i++ {
					if idx := start + i; idx < len(values) {
						values[idx] = a.watts * (0.8 + 0.4*rng.Float64())
					}
				}
			}
		}
		s, err := ftpm.NewTimeSeries(a.name, 0, step, values)
		if err != nil {
			log.Fatal(err)
		}
		series = append(series, s)
	}

	// 2. Symbolize: On when the appliance draws at least 5 W (the paper
	// uses >= 0.05 on normalized readings).
	sdb, err := ftpm.Symbolize(series, func(string) ftpm.Symbolizer {
		return ftpm.OnOff(5)
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Mine daily sequences with a one-hour overlap so routines that
	// straddle midnight are preserved (§IV-B2).
	res, err := ftpm.MineSymbolic(context.Background(), sdb, ftpm.Options{
		MinSupport:     0.3,
		MinConfidence:  0.4,
		WindowLength:   samplesPerDay * step,
		Overlap:        4 * step, // one hour
		TMax:           4 * 3600, // routines span at most 4 hours
		MaxPatternSize: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d sequences, %d frequent events, %d patterns\n\n",
		res.Stats.Sequences, len(res.Singles), len(res.Patterns))

	// 4. Show the strongest cross-appliance "On" routines.
	type row struct {
		p     ftpm.PatternInfo
		score float64
	}
	var routines []row
	for _, p := range res.Patterns {
		allOn := true
		names := map[string]bool{}
		for _, e := range p.Pattern.Events {
			def := res.DB.Vocab.Def(e)
			if def.Symbol != "On" {
				allOn = false
				break
			}
			names[def.Series] = true
		}
		if !allOn || len(names) < 2 {
			continue
		}
		routines = append(routines, row{p, float64(p.Pattern.K()) + p.Confidence})
	}
	sort.Slice(routines, func(i, j int) bool { return routines[i].score > routines[j].score })

	fmt.Println("strongest cross-appliance routines:")
	max := 10
	if len(routines) < max {
		max = len(routines)
	}
	for _, r := range routines[:max] {
		fmt.Printf("  supp=%3.0f%% conf=%3.0f%%  %s\n",
			r.p.RelSupport*100, r.p.Confidence*100, res.Describe(r.p))
	}
}
