// Correlation explores the mutual-information machinery of A-HTPGM (§V)
// on the paper's Table I example: the pairwise NMI matrix, the µ-versus-
// density trade-off of Def 5.6, and the confidence lower bound of
// Theorem 1 evaluated over a µ sweep.
package main

import (
	"fmt"
	"log"

	"ftpm"
)

var rows = []struct{ name, data string }{
	{"K", "On On On On Off Off Off On On Off Off Off Off Off Off On On On Off Off Off Off On On On Off Off On On Off Off On On On Off Off"},
	{"T", "Off On On On Off Off Off On On Off Off On On Off Off On On On Off Off Off Off On On On Off Off On On Off Off Off On On On Off"},
	{"M", "Off Off Off Off On On On Off Off On On On Off On On Off Off Off On On Off On On Off Off On On Off Off On On On Off Off On On"},
	{"C", "Off Off Off Off On On On Off Off On On Off On On On Off Off Off On On Off On On Off Off On On Off Off On On On Off Off On On"},
	{"I", "Off Off Off Off Off Off Off Off Off On On Off Off Off Off Off On On Off Off Off Off Off Off Off Off Off On On Off Off Off On On Off Off"},
	{"B", "Off Off Off Off Off Off Off On On Off Off Off Off Off Off Off Off Off On On Off Off Off Off Off Off Off On On Off Off Off Off Off On On"},
}

func main() {
	var series []*ftpm.SymbolicSeries
	for _, r := range rows {
		s, err := ftpm.ParseSymbols(r.name, 10*3600, 300, []string{"Off", "On"}, r.data)
		if err != nil {
			log.Fatal(err)
		}
		series = append(series, s)
	}
	sdb, err := ftpm.NewSymbolicDB(series...)
	if err != nil {
		log.Fatal(err)
	}

	// 1. The full pairwise NMI matrix (Def 5.3; NMI is asymmetric).
	fmt.Println("pairwise NMI matrix (rows: X, columns: Y, value: I~(X;Y)):")
	fmt.Printf("%4s", "")
	for _, s := range sdb.Series {
		fmt.Printf("%7s", s.Name)
	}
	fmt.Println()
	for _, x := range sdb.Series {
		fmt.Printf("%4s", x.Name)
		for _, y := range sdb.Series {
			v, err := ftpm.NMI(x, y)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%7.3f", v)
		}
		fmt.Println()
	}

	// 2. Density sweep: how µ and the vertex set change with the
	// expected edge density (Def 5.6).
	fmt.Println("\ndensity sweep:")
	for _, d := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		g, mu, err := ftpm.CorrelationGraphByDensity(sdb, d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  density %3.0f%% -> µ=%.4f, %2d edges, correlated: %v\n",
			d*100, mu, g.NumEdges(), g.Vertices())
	}

	// 3. Theorem 1: guaranteed DSEQ confidence of a frequent event pair
	// as a function of µ, at the paper's K/T operating point
	// (σ = supp(KOn,TOn) = 15/36, σm = 18/36, binary alphabet).
	fmt.Println("\nTheorem 1 lower bound for the (K=On, T=On) pair:")
	sigma, sigmaM := 15.0/36, 18.0/36
	for _, mu := range []float64{0.2, 0.42, 0.6, 0.8, 1.0} {
		lb, err := ftpm.ConfidenceLowerBound(sigma, sigmaM, mu, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  µ=%.2f -> conf(K=On,T=On) ≥ %.3f\n", mu, lb)
	}
	fmt.Println("\nobserved: K=On and T=On co-occur in all 4 sequences of DSEQ (confidence 1.0)")
}
