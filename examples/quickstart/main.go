// Quickstart reproduces the paper's running example end to end: the
// symbolic database of Table I (six appliances sampled every 5 minutes)
// is split into the four sequences of Table III and mined with both
// E-HTPGM and A-HTPGM; the NMI values of §V-A and the correlation graph
// of Fig 5 are printed along the way.
package main

import (
	"context"
	"fmt"
	"log"

	"ftpm"
)

// Table I of the paper: 36 samples per appliance, 10:00-12:55, 5-minute
// sampling.
var rows = []struct{ name, data string }{
	{"K", "On On On On Off Off Off On On Off Off Off Off Off Off On On On Off Off Off Off On On On Off Off On On Off Off On On On Off Off"},
	{"T", "Off On On On Off Off Off On On Off Off On On Off Off On On On Off Off Off Off On On On Off Off On On Off Off Off On On On Off"},
	{"M", "Off Off Off Off On On On Off Off On On On Off On On Off Off Off On On Off On On Off Off On On Off Off On On On Off Off On On"},
	{"C", "Off Off Off Off On On On Off Off On On Off On On On Off Off Off On On Off On On Off Off On On Off Off On On On Off Off On On"},
	{"I", "Off Off Off Off Off Off Off Off Off On On Off Off Off Off Off On On Off Off Off Off Off Off Off Off Off On On Off Off Off On On Off Off"},
	{"B", "Off Off Off Off Off Off Off On On Off Off Off Off Off Off Off Off Off On On Off Off Off Off Off Off Off On On Off Off Off Off Off On On"},
}

func main() {
	// 1. Build the symbolic database DSYB (Def 3.3).
	const start = 10 * 3600 // 10:00, in seconds of day
	const step = 5 * 60     // 5 minutes
	var series []*ftpm.SymbolicSeries
	for _, r := range rows {
		s, err := ftpm.ParseSymbols(r.name, start, step, []string{"Off", "On"}, r.data)
		if err != nil {
			log.Fatal(err)
		}
		series = append(series, s)
	}
	sdb, err := ftpm.NewSymbolicDB(series...)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Mutual information between K and T (paper §V-A: I~(K;T) ≈ 0.42).
	nmiKT, _ := ftpm.NMI(sdb.Find("K"), sdb.Find("T"))
	nmiTK, _ := ftpm.NMI(sdb.Find("T"), sdb.Find("K"))
	fmt.Printf("NMI(K;T) = %.2f, NMI(T;K) = %.2f\n", nmiKT, nmiTK)

	// 3. The Fig 5 correlation graph: 40%% density keeps 6 of 15 edges.
	graph, mu, err := ftpm.CorrelationGraphByDensity(sdb, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correlation graph at 40%% density: µ=%.2f, vertices=%v, edges=%v\n\n",
		mu, graph.Vertices(), graph.Edges())

	// 4. Exact mining (E-HTPGM) with the paper's Fig 4 thresholds.
	opts := ftpm.Options{
		MinSupport:    0.7,
		MinConfidence: 0.7,
		NumWindows:    4, // Table III: four equal sequences
	}
	exact, err := ftpm.MineSymbolic(context.Background(), sdb, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("E-HTPGM: %d frequent events, %d frequent temporal patterns\n",
		len(exact.Singles), len(exact.Patterns))
	for _, p := range exact.Patterns {
		fmt.Printf("  supp=%3.0f%% conf=%3.0f%%  %s\n",
			p.RelSupport*100, p.Confidence*100, exact.Describe(p))
	}

	// 5. Approximate mining (A-HTPGM) on the correlated series only.
	opts.Approx = &ftpm.ApproxOptions{Density: 0.4}
	approx, err := ftpm.MineSymbolic(context.Background(), sdb, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nA-HTPGM (µ=%.2f): %d patterns, accuracy vs exact: %.0f%%\n",
		approx.Mu, len(approx.Patterns), ftpm.Accuracy(approx, exact)*100)
	fmt.Printf("candidate combinations: exact=%d approx=%d\n",
		total(exact.Stats), total(approx.Stats))
}

func total(s ftpm.Stats) int {
	n := 0
	for _, l := range s.Levels {
		n += l.Candidates
	}
	return n
}
