package ftpm_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"ftpm"
	"ftpm/internal/paperex"
)

// docBytes marshals a result's export document for byte-level comparison.
func docBytes(t *testing.T, res *ftpm.Result) []byte {
	t.Helper()
	doc := res.Document()
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestPreparedMatchesMineSymbolic is the engine-equivalence property
// test: for every mining mode — exact, approx by µ, approx by density,
// event-level approx — crossed with sharded and unsharded geometries,
// mining through a (warm, reused) Prepared must be byte-identical to a
// fresh MineSymbolic run, including on repeat calls served entirely from
// the cached artifacts.
func TestPreparedMatchesMineSymbolic(t *testing.T) {
	sdb := paperex.SymbolicDB()
	ctx := context.Background()
	variants := []struct {
		name   string
		approx *ftpm.ApproxOptions
	}{
		{"exact", nil},
		{"approx-mu", &ftpm.ApproxOptions{Mu: 0.3}},
		{"approx-density", &ftpm.ApproxOptions{Density: 0.6}},
		{"event-level", &ftpm.ApproxOptions{Density: 0.6, EventLevel: true}},
	}
	for _, shards := range []int{1, 3} {
		prep, err := ftpm.Prepare(sdb, ftpm.SplitOptions{NumWindows: 4}, shards)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range variants {
			opt := ftpm.Options{
				MinSupport: 0.5, MinConfidence: 0.5,
				NumWindows: 4, Shards: shards, Approx: v.approx,
			}
			want, err := ftpm.MineSymbolic(ctx, sdb, opt)
			if err != nil {
				t.Fatalf("shards=%d %s: MineSymbolic: %v", shards, v.name, err)
			}
			if len(want.Patterns) == 0 {
				t.Fatalf("shards=%d %s: vacuous comparison, no patterns mined", shards, v.name)
			}
			wantDoc := docBytes(t, want)
			for round := 0; round < 2; round++ { // cold handle, then warm
				got, err := prep.Mine(ctx, opt)
				if err != nil {
					t.Fatalf("shards=%d %s round %d: Prepared.Mine: %v", shards, v.name, round, err)
				}
				if gotDoc := docBytes(t, got); !bytes.Equal(gotDoc, wantDoc) {
					t.Fatalf("shards=%d %s round %d: Prepared.Mine diverges from MineSymbolic:\n%s\nvs\n%s",
						shards, v.name, round, gotDoc, wantDoc)
				}
				if got.Mu != want.Mu {
					t.Fatalf("shards=%d %s round %d: mu %v != %v", shards, v.name, round, got.Mu, want.Mu)
				}
			}
		}
		// 8 Mine calls per geometry: the conversion built once, reused 7
		// times; the series-level table serves both approx variants and
		// the event-level table its own, each built once.
		st := prep.Stats()
		if st.DSEQBuilds != 1 || st.DSEQHits != 7 {
			t.Fatalf("shards=%d: DSEQ counters = %+v, want 1 build + 7 hits", shards, st)
		}
		if st.NMIBuilds != 2 || st.NMIHits != 4 {
			t.Fatalf("shards=%d: NMI counters = %+v, want 2 builds + 4 hits", shards, st)

		}
	}
}

// TestPreparedArtifactReuse pins the per-run CacheInfo reporting.
func TestPreparedArtifactReuse(t *testing.T) {
	sdb := paperex.SymbolicDB()
	ctx := context.Background()
	prep, err := ftpm.Prepare(sdb, ftpm.SplitOptions{NumWindows: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}

	opt := ftpm.Options{MinSupport: 0.5, MinConfidence: 0.5, Approx: &ftpm.ApproxOptions{Density: 0.6}}
	first, err := prep.Mine(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cache.DSEQ || first.Cache.NMI {
		t.Fatalf("first run reports cache reuse: %+v", first.Cache)
	}
	if len(first.Stats.ShardSequences) != 2 {
		t.Fatalf("sharded run stats = %v, want 2 shards", first.Stats.ShardSequences)
	}

	// A different threshold reuses both artifacts.
	opt.Approx = &ftpm.ApproxOptions{Mu: 0.3}
	second, err := prep.Mine(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cache.DSEQ || !second.Cache.NMI {
		t.Fatalf("second run must reuse DSEQ and NMI: %+v", second.Cache)
	}

	// Exact runs never consult NMI.
	opt.Approx = nil
	exact, err := prep.Mine(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Cache.DSEQ || exact.Cache.NMI {
		t.Fatalf("exact run cache info = %+v, want DSEQ reuse only", exact.Cache)
	}

	// Plain MineSymbolic never reports reuse (fresh one-shot handle).
	plain, err := ftpm.MineSymbolic(ctx, sdb, ftpm.Options{
		MinSupport: 0.5, MinConfidence: 0.5, NumWindows: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cache.DSEQ || plain.Cache.NMI {
		t.Fatalf("MineSymbolic reports cache reuse: %+v", plain.Cache)
	}
}

// TestAnalysisSharedAcrossGeometries pins that the NMI tables are
// geometry-independent: handles prepared over different window splits
// and shard widths of one database share one Analysis, so only the
// first approximate run anywhere pays the pairwise computation.
func TestAnalysisSharedAcrossGeometries(t *testing.T) {
	sdb := paperex.SymbolicDB()
	an := ftpm.NewAnalysis(sdb)
	p1, err := ftpm.PrepareWith(an, ftpm.SplitOptions{NumWindows: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ftpm.PrepareWith(an, ftpm.SplitOptions{NumWindows: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// MaxPatternSize bounds the levels: the two-window geometry has long
	// sequences and the test is about artifact sharing, not deep mining.
	opt := ftpm.Options{
		MinSupport: 0.5, MinConfidence: 0.5, MaxPatternSize: 2,
		Approx: &ftpm.ApproxOptions{Density: 0.6},
	}
	first, err := p1.Mine(nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cache.NMI {
		t.Fatal("first run across the analysis must build the NMI table")
	}
	second, err := p2.Mine(nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cache.NMI {
		t.Fatal("sibling handle must reuse the shared NMI table")
	}
	if second.Cache.DSEQ {
		t.Fatal("sibling handle has its own geometry; the conversion must rebuild")
	}
	if st := p2.Stats(); st.NMIBuilds != 0 || st.NMIHits != 1 {
		t.Fatalf("sibling counters = %+v, want a pure NMI hit", st)
	}
	if _, err := ftpm.PrepareWith(nil, ftpm.SplitOptions{NumWindows: 2}, 1); err == nil {
		t.Fatal("nil analysis must be rejected")
	}
}

// TestPrepareValidation pins the eager checks of Prepare.
func TestPrepareValidation(t *testing.T) {
	sdb := paperex.SymbolicDB()
	if _, err := ftpm.Prepare(nil, ftpm.SplitOptions{NumWindows: 4}, 1); err == nil {
		t.Fatal("nil database must be rejected")
	}
	if _, err := ftpm.Prepare(sdb, ftpm.SplitOptions{}, 1); err == nil {
		t.Fatal("missing window geometry must be rejected at Prepare time")
	}
	if _, err := ftpm.Prepare(sdb, ftpm.SplitOptions{NumWindows: 4, WindowLength: 10}, 1); err == nil {
		t.Fatal("conflicting window geometry must be rejected at Prepare time")
	}
	prep, err := ftpm.Prepare(sdb, ftpm.SplitOptions{NumWindows: 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if prep.Shards() != 1 {
		t.Fatalf("shards clamp: %d, want 1", prep.Shards())
	}
	// Approx still demands exactly one threshold selector.
	if _, err := prep.Mine(nil, ftpm.Options{MinSupport: 0.5, Approx: &ftpm.ApproxOptions{}}); err == nil {
		t.Fatal("empty ApproxOptions must be rejected")
	}
	if _, err := prep.Mine(nil, ftpm.Options{MinSupport: 0.5, Approx: &ftpm.ApproxOptions{Mu: 0.3, Density: 0.5}}); err == nil {
		t.Fatal("both mu and density must be rejected")
	}
	// Mine rejects options that contradict the prepared geometry instead
	// of silently mining the handle's split.
	if _, err := prep.Mine(nil, ftpm.Options{MinSupport: 0.5, NumWindows: 8}); err == nil {
		t.Fatal("conflicting window geometry must be rejected by Mine")
	}
	if _, err := prep.Mine(nil, ftpm.Options{MinSupport: 0.5, Shards: 3}); err == nil {
		t.Fatal("conflicting shard width must be rejected by Mine")
	}
	if _, err := prep.Mine(nil, ftpm.Options{MinSupport: 0.5, NumWindows: 4}); err != nil {
		t.Fatalf("matching geometry must be accepted: %v", err)
	}
	// Non-positive Shards means unset, matching MineSymbolic's historic
	// "Shards <= 1 mines unsharded" behavior.
	if _, err := prep.Mine(nil, ftpm.Options{MinSupport: 0.5, Shards: -1}); err != nil {
		t.Fatalf("negative Shards must be treated as unset: %v", err)
	}
}
