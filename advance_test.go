package ftpm_test

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"ftpm"
)

// advanceSDB builds a seeded symbolic database of three binary series
// over n samples. B lags A by two ticks and C tracks A with sparse noise,
// so the series carry enough mutual information to survive NMI pruning in
// the approximate modes.
func advanceSDB(t *testing.T, seed int64, n int) *ftpm.SymbolicDB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := make([]int, n)
	b := make([]int, n)
	c := make([]int, n)
	for i := range a {
		if i%8 < 3 || rng.Intn(11) == 0 {
			a[i] = 1
		}
	}
	for i := range b {
		if i >= 2 {
			b[i] = a[i-2]
		}
		if i >= 1 {
			c[i] = a[i-1]
		} else {
			c[i] = 1
		}
		if rng.Intn(17) == 0 {
			c[i] = 1 - c[i]
		}
	}
	mk := func(name string, syms []int) *ftpm.SymbolicSeries {
		return &ftpm.SymbolicSeries{
			Name: name, Start: 0, Step: 10,
			Alphabet: []string{"Off", "On"}, Symbols: syms,
		}
	}
	db, err := ftpm.NewSymbolicDB(mk("A", a), mk("B", b), mk("C", c))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// prefixSDB returns the database restricted to its first n samples with
// private storage.
func prefixSDB(t *testing.T, db *ftpm.SymbolicDB, n int) *ftpm.SymbolicDB {
	t.Helper()
	series := make([]*ftpm.SymbolicSeries, len(db.Series))
	for i, s := range db.Series {
		series[i] = &ftpm.SymbolicSeries{
			Name: s.Name, Start: s.Start, Step: s.Step,
			Alphabet: append([]string(nil), s.Alphabet...),
			Symbols:  append([]int(nil), s.Symbols[:n]...),
		}
	}
	out, err := ftpm.NewSymbolicDB(series...)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestAdvanceMatchesFreshPrepare is the append-then-mine equivalence
// property at the façade layer: a handle advanced over an extended
// database must mine byte-identically to a cold Prepare of the extended
// database, across shard counts and every mining mode, whether or not
// the old handle was warm — and the old handle must keep mining its own
// (pre-append) view unchanged afterwards.
func TestAdvanceMatchesFreshPrepare(t *testing.T) {
	ctx := context.Background()
	full := advanceSDB(t, 21, 360)
	base := prefixSDB(t, full, 240)
	split := ftpm.SplitOptions{WindowLength: 200, Overlap: 100}
	variants := []struct {
		name   string
		approx *ftpm.ApproxOptions
	}{
		{"exact", nil},
		{"approx-mu", &ftpm.ApproxOptions{Mu: 0.05}},
		{"approx-density", &ftpm.ApproxOptions{Density: 0.6}},
		{"event-level", &ftpm.ApproxOptions{Density: 0.6, EventLevel: true}},
	}
	for _, shards := range []int{1, 3} {
		for _, warm := range []bool{false, true} {
			prep, err := ftpm.Prepare(base, split, shards)
			if err != nil {
				t.Fatal(err)
			}
			opt := ftpm.Options{
				MinSupport: 0.3, MinConfidence: 0.2, MaxPatternSize: 3,
			}
			var baseDoc []byte
			if warm {
				baseRes, err := prep.Mine(ctx, opt)
				if err != nil {
					t.Fatal(err)
				}
				baseDoc = docBytes(t, baseRes)
			}

			adv, err := prep.Advance(ftpm.NewAnalysis(full))
			if err != nil {
				t.Fatalf("shards=%d warm=%v: Advance: %v", shards, warm, err)
			}
			fresh, err := ftpm.Prepare(full, split, shards)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range variants {
				opt.Approx = v.approx
				want, err := fresh.Mine(ctx, opt)
				if err != nil {
					t.Fatalf("shards=%d warm=%v %s: fresh mine: %v", shards, warm, v.name, err)
				}
				if len(want.Patterns) == 0 {
					t.Fatalf("shards=%d warm=%v %s: vacuous comparison", shards, warm, v.name)
				}
				got, err := adv.Mine(ctx, opt)
				if err != nil {
					t.Fatalf("shards=%d warm=%v %s: advanced mine: %v", shards, warm, v.name, err)
				}
				if g, w := docBytes(t, got), docBytes(t, want); !bytes.Equal(g, w) {
					t.Fatalf("shards=%d warm=%v %s: advanced mine diverges from fresh prepare:\n%s\nvs\n%s",
						shards, warm, v.name, g, w)
				}
			}

			if warm {
				// The pre-append handle must still serve its own view.
				opt.Approx = nil
				again, err := prep.Mine(ctx, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(docBytes(t, again), baseDoc) {
					t.Fatalf("shards=%d: old handle's results changed after Advance", shards)
				}
			}
		}
	}
}

// TestAdvanceChainedAppends advances through several mine-less appends
// and mines only at the end; the chain must match a cold prepare of the
// final database.
func TestAdvanceChainedAppends(t *testing.T) {
	ctx := context.Background()
	full := advanceSDB(t, 22, 400)
	split := ftpm.SplitOptions{WindowLength: 200, Overlap: 100}
	prep, err := ftpm.Prepare(prefixSDB(t, full, 150), split, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{220, 300, 400} {
		next, err := prep.Advance(ftpm.NewAnalysis(prefixSDB(t, full, n)))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		prep = next
	}
	fresh, err := ftpm.Prepare(full, split, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt := ftpm.Options{MinSupport: 0.3, MinConfidence: 0.2, MaxPatternSize: 3,
		Approx: &ftpm.ApproxOptions{Mu: 0.05}}
	want, err := fresh.Mine(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prep.Mine(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := docBytes(t, got), docBytes(t, want); !bytes.Equal(g, w) {
		t.Fatalf("chained advances diverge from fresh prepare:\n%s\nvs\n%s", g, w)
	}
}

// TestAdvanceRejectsNonExtensions pins the extends validation: shrunk
// series, renamed series, a changed grid, and a renumbered alphabet all
// refuse to advance.
func TestAdvanceRejectsNonExtensions(t *testing.T) {
	full := advanceSDB(t, 23, 200)
	base := prefixSDB(t, full, 160)
	prep, err := ftpm.Prepare(base, ftpm.SplitOptions{WindowLength: 200, Overlap: 100}, 1)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(db *ftpm.SymbolicDB)) *ftpm.SymbolicDB {
		db := prefixSDB(t, full, 200)
		f(db)
		return db
	}
	cases := []struct {
		name string
		db   *ftpm.SymbolicDB
	}{
		{"shrunk", prefixSDB(t, full, 100)},
		{"renamed", mutate(func(db *ftpm.SymbolicDB) { db.Series[1].Name = "Q" })},
		{"regridded", mutate(func(db *ftpm.SymbolicDB) {
			for _, s := range db.Series {
				s.Step = 20
			}
		})},
		{"alphabet-renumbered", mutate(func(db *ftpm.SymbolicDB) {
			db.Series[0].Alphabet = []string{"On", "Off"}
		})},
	}
	for _, tc := range cases {
		if _, err := prep.Advance(ftpm.NewAnalysis(tc.db)); err == nil {
			t.Errorf("%s: Advance accepted a non-extension", tc.name)
		}
	}
}
