#!/bin/sh
# Vet-style guard for the v1 error envelope: production HTTP code must
# route every error response through writeError (internal/server/server.go),
# which is the only place allowed to construct the apiError envelope.
# http.Error would write text/plain bodies that break API clients.
#
# Mirrored as TestNoRawErrorWritesInHandlers so `go test` catches it too;
# this script gives CI a dependency-free line of defense.
set -eu

cd "$(dirname "$0")/.."

fail=0

# No http.Error anywhere in production server or command code.
if matches=$(grep -rn 'http\.Error(' internal/server cmd --include='*.go' | grep -v '_test\.go'); then
    echo "error: http.Error bypasses the error envelope; use writeError instead:" >&2
    echo "$matches" >&2
    fail=1
fi

# The apiError envelope literal is constructed only by the helper's file.
if matches=$(grep -rn 'apiError{' internal/server cmd --include='*.go' |
        grep -v '_test\.go' | grep -v '^internal/server/server\.go:'); then
    echo "error: apiError built outside internal/server/server.go; only writeError may:" >&2
    echo "$matches" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "error envelope check: ok"
