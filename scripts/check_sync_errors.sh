#!/bin/sh
# Vet-style guard for durability: production code must never discard the
# error from an fsync. `_ = f.Sync()` turns a failed flush into a silent
# lie — the caller acknowledges data the disk never accepted, and the
# degraded-mode machinery (internal/server/store taxonomy) never hears
# about the fault. Sync errors must be returned, retried, or routed into
# the fault taxonomy; tests are exempt.
set -eu

cd "$(dirname "$0")/.."

if matches=$(grep -rnE '_ = [A-Za-z0-9_.]+\.Sync\(\)' internal cmd --include='*.go' | grep -v '_test\.go'); then
    echo "error: discarded Sync() error; return it or classify it via the store fault taxonomy:" >&2
    echo "$matches" >&2
    exit 1
fi
echo "sync error check: ok"
