// Benchmarks regenerating the paper's evaluation, one per table and
// figure (§VI). Each benchmark runs the corresponding experiment of
// internal/experiments at a reduced dataset scale so the full suite
// completes in minutes; `cmd/ftpm-bench -scale 1 -maxk 3` reproduces the
// paper-sized runs. Run with:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// The per-iteration time of a Table benchmark is the wall time of
// regenerating that entire table (all cells, all methods).
package ftpm_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ftpm"
	"ftpm/internal/experiments"
	"ftpm/internal/paperex"
	"ftpm/internal/server"
	"ftpm/internal/server/store"
)

// benchOpt is the reduced-scale configuration of the bench suite.
func benchOpt() experiments.Options {
	return experiments.Options{Scale: 0.01, MaxK: 2}
}

func runExperiment(b *testing.B, id string, opt experiments.Options) {
	b.Helper()
	runner := experiments.Registry()[id]
	if runner == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := runner(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
		rows := 0
		for _, t := range tables {
			rows += len(t.Rows)
		}
		b.ReportMetric(float64(rows), "rows")
	}
}

// BenchmarkTable4Datasets regenerates Table IV (dataset characteristics).
func BenchmarkTable4Datasets(b *testing.B) { runExperiment(b, "table4", benchOpt()) }

// BenchmarkTable5PatternCounts regenerates Table V (number of extracted
// patterns over the sigma x delta grid, 4 datasets).
func BenchmarkTable5PatternCounts(b *testing.B) { runExperiment(b, "table5", benchOpt()) }

// BenchmarkTable6InterestingPatterns regenerates Table VI (qualitative
// pattern listing).
func BenchmarkTable6InterestingPatterns(b *testing.B) { runExperiment(b, "table6", benchOpt()) }

// BenchmarkTable7Runtime regenerates Table VII (runtime comparison of
// H-DFS, IEMiner, TPMiner, E-HTPGM and A-HTPGM at four µ settings).
func BenchmarkTable7Runtime(b *testing.B) { runExperiment(b, "table7", benchOpt()) }

// BenchmarkTable8Memory regenerates Table VIII (peak memory comparison).
func BenchmarkTable8Memory(b *testing.B) { runExperiment(b, "table8", benchOpt()) }

// BenchmarkTable9Accuracy regenerates Table IX (accuracy of A-HTPGM).
func BenchmarkTable9Accuracy(b *testing.B) { runExperiment(b, "table9", benchOpt()) }

// BenchmarkFig6PruningNIST regenerates Fig 6 (pruning ablation on NIST;
// mines to level 3, where transitivity pruning acts).
func BenchmarkFig6PruningNIST(b *testing.B) { runExperiment(b, "fig6", benchOpt()) }

// BenchmarkFig7PruningSmartCity regenerates Fig 7 (ablation, Smart City).
func BenchmarkFig7PruningSmartCity(b *testing.B) { runExperiment(b, "fig7", benchOpt()) }

// BenchmarkFig8PrunedCDF regenerates Fig 8 (confidence CDF of the
// patterns A-HTPGM prunes).
func BenchmarkFig8PrunedCDF(b *testing.B) { runExperiment(b, "fig8", benchOpt()) }

// BenchmarkFig9TradeOff regenerates Fig 9 (accuracy vs runtime gain).
func BenchmarkFig9TradeOff(b *testing.B) { runExperiment(b, "fig9", benchOpt()) }

// BenchmarkFig10ScaleDataNIST regenerates Fig 10 (runtime vs %sequences,
// NIST x4).
func BenchmarkFig10ScaleDataNIST(b *testing.B) { runExperiment(b, "fig10", benchOpt()) }

// BenchmarkFig11ScaleDataSmartCity regenerates Fig 11 (Smart City x4).
func BenchmarkFig11ScaleDataSmartCity(b *testing.B) { runExperiment(b, "fig11", benchOpt()) }

// BenchmarkFig12ScaleAttrsNIST regenerates Fig 12 (runtime vs
// %attributes, NIST).
func BenchmarkFig12ScaleAttrsNIST(b *testing.B) { runExperiment(b, "fig12", benchOpt()) }

// BenchmarkFig13ScaleAttrsSmartCity regenerates Fig 13 (Smart City).
func BenchmarkFig13ScaleAttrsSmartCity(b *testing.B) { runExperiment(b, "fig13", benchOpt()) }

// BenchmarkEndToEndPaperExample measures the full public-API pipeline on
// the paper's Table I example (symbolic database -> DSEQ -> E-HTPGM).
func BenchmarkEndToEndPaperExample(b *testing.B) {
	sdb := paperex.SymbolicDB()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := ftpm.MineSymbolic(context.Background(), sdb, ftpm.Options{
			MinSupport:    0.7,
			MinConfidence: 0.7,
			NumWindows:    4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Patterns) == 0 {
			b.Fatal("no patterns")
		}
	}
}

// approxJobDB builds the cold/warm benchmark dataset: enough series
// that the O(n²) pairwise NMI analysis and the DSEQ conversion — the
// artifacts a Prepared caches — dominate one approximate job even with
// run-based counting (cost ∝ runs, not samples), while the long symbol
// runs and a sparse correlation graph keep the mining phase itself
// small.
func approxJobDB(b *testing.B) *ftpm.SymbolicDB {
	b.Helper()
	const nSeries, nSamples = 96, 32768
	series := make([]*ftpm.TimeSeries, nSeries)
	for s := 0; s < nSeries; s++ {
		vals := make([]float64, nSamples)
		period := 128 + 32*(s%9)
		phase := (s * 5) % period
		for i := range vals {
			if ((i+phase)/period)%2 == 0 {
				vals[i] = 1
			}
		}
		ts, err := ftpm.NewTimeSeries(fmt.Sprintf("S%02d", s), 0, 1, vals)
		if err != nil {
			b.Fatal(err)
		}
		series[s] = ts
	}
	sdb, err := ftpm.Symbolize(series, func(string) ftpm.Symbolizer { return ftpm.OnOff(0.5) })
	if err != nil {
		b.Fatal(err)
	}
	return sdb
}

// BenchmarkApproxJobColdVsWarm measures what the prepared-dataset engine
// saves on repeat A-HTPGM jobs: "cold" prepares a fresh handle per job
// (DSEQ conversion + O(n²) pairwise NMI + mining, the old per-job cost),
// "warm" reuses one Prepared so only the threshold resolution and the
// mining itself run. CI asserts warm is at least 3× faster than cold on
// any core count — cache reuse does not depend on parallelism (the
// "always" speedup spec in .github/workflows/ci.yml).
func BenchmarkApproxJobColdVsWarm(b *testing.B) {
	sdb := approxJobDB(b)
	split := ftpm.SplitOptions{NumWindows: 16}
	opt := ftpm.Options{
		MinSupport: 0.5, MinConfidence: 0,
		NumWindows: 16, MaxPatternSize: 2,
		Approx: &ftpm.ApproxOptions{Density: 0.01},
	}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, err := ftpm.Prepare(sdb, split, 1)
			if err != nil {
				b.Fatal(err)
			}
			res, err := p.Mine(context.Background(), opt)
			if err != nil {
				b.Fatal(err)
			}
			if res.Graph == nil {
				b.Fatal("no correlation graph")
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		p, err := ftpm.Prepare(sdb, split, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Mine(context.Background(), opt); err != nil { // prime the caches
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := p.Mine(context.Background(), opt)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Cache.DSEQ || !res.Cache.NMI {
				b.Fatalf("warm run missed the caches: %+v", res.Cache)
			}
		}
	})
}

// BenchmarkEndToEndApprox measures the A-HTPGM pipeline including NMI
// computation and correlation-graph construction.
func BenchmarkEndToEndApprox(b *testing.B) {
	sdb := paperex.SymbolicDB()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := ftpm.MineSymbolic(context.Background(), sdb, ftpm.Options{
			MinSupport:    0.7,
			MinConfidence: 0.7,
			NumWindows:    4,
			Approx:        &ftpm.ApproxOptions{Density: 0.4},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Graph == nil {
			b.Fatal("no graph")
		}
	}
}

// appendBenchDB builds the append benchmark's symbolic database: long
// alternating runs so the DSEQ conversion and L1 scan — the work the
// append path makes incremental — dominate, with the mining itself kept
// to singles.
func appendBenchDB(b *testing.B, nSeries, nSamples int) *ftpm.SymbolicDB {
	b.Helper()
	series := make([]*ftpm.SymbolicSeries, nSeries)
	for s := 0; s < nSeries; s++ {
		syms := make([]int, nSamples)
		period := 12 + 2*(s%7)
		phase := (s * 11) % period
		for i := range syms {
			if ((i+phase)/period)%2 == 0 {
				syms[i] = 1
			}
		}
		series[s] = &ftpm.SymbolicSeries{
			Name: fmt.Sprintf("S%02d", s), Start: 0, Step: 1,
			Alphabet: []string{"Off", "On"}, Symbols: syms,
		}
	}
	sdb, err := ftpm.NewSymbolicDB(series...)
	if err != nil {
		b.Fatal(err)
	}
	return sdb
}

// BenchmarkAppendVsReupload measures what the append path saves over
// re-ingesting everything when 10% of the data is new: "reupload"
// prepares and mines the full database from scratch each iteration (the
// only option before incremental appends), "append" starts from a primed
// handle over the first 90% and per iteration extends the series
// (copy-on-append), advances the handle, and mines — so only the window
// suffix touched by the delta is re-cut and re-scanned. CI asserts
// append is at least 3x faster than reupload on any core count (the
// "always" speedup spec in .github/workflows/ci.yml).
func BenchmarkAppendVsReupload(b *testing.B) {
	const (
		nSeries = 16
		total   = 16384
		baseLen = total * 9 / 10
		shards  = 4
	)
	full := appendBenchDB(b, nSeries, total)
	base := make([]*ftpm.SymbolicSeries, nSeries)
	for i, s := range full.Series {
		base[i] = &ftpm.SymbolicSeries{
			Name: s.Name, Start: s.Start, Step: s.Step,
			Alphabet: s.Alphabet, Symbols: s.Symbols[:baseLen:baseLen],
		}
	}
	baseSDB, err := ftpm.NewSymbolicDB(base...)
	if err != nil {
		b.Fatal(err)
	}
	split := ftpm.SplitOptions{WindowLength: 256, Overlap: 248}
	opt := ftpm.Options{
		MinSupport: 0.4, MinConfidence: 0,
		WindowLength: 256, Overlap: 248, MaxPatternSize: 1,
	}

	b.Run("reupload", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, err := ftpm.Prepare(full, split, shards)
			if err != nil {
				b.Fatal(err)
			}
			res, err := p.Mine(context.Background(), opt)
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.Sequences == 0 {
				b.Fatal("no sequences mined")
			}
		}
	})
	b.Run("append", func(b *testing.B) {
		p, err := ftpm.Prepare(baseSDB, split, shards)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Mine(context.Background(), opt); err != nil { // prime conversion + L1 index
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ext := make([]*ftpm.SymbolicSeries, nSeries)
			for si, s := range baseSDB.Series {
				n := len(s.Symbols)
				ext[si] = &ftpm.SymbolicSeries{
					Name: s.Name, Start: s.Start, Step: s.Step,
					Alphabet: s.Alphabet,
					Symbols:  append(s.Symbols[:n:n], full.Series[si].Symbols[baseLen:]...),
				}
			}
			extSDB, err := ftpm.NewSymbolicDB(ext...)
			if err != nil {
				b.Fatal(err)
			}
			np, err := p.Advance(ftpm.NewAnalysis(extSDB))
			if err != nil {
				b.Fatal(err)
			}
			res, err := np.Mine(context.Background(), opt)
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.Sequences == 0 {
				b.Fatal("no sequences mined")
			}
		}
	})
}

// benchDatasetRecord mirrors the wire shape of the mining service's
// persisted dataset record — enough of it to plant either storage mode's
// record in a fresh write-ahead log.
type benchDatasetRecord struct {
	ID          string            `json:"id"`
	Name        string            `json:"name"`
	CreatedAt   time.Time         `json:"created_at"`
	Shards      int               `json:"shards"`
	Series      []benchSeriesJSON `json:"series,omitempty"`
	Segments    []string          `json:"segments,omitempty"`
	Fingerprint string            `json:"fingerprint,omitempty"`
	Samples     int               `json:"samples,omitempty"`
}

// benchSeriesJSON is the legacy full-payload series record.
type benchSeriesJSON struct {
	Name     string   `json:"name"`
	Start    int64    `json:"start"`
	Step     int64    `json:"step"`
	Alphabet []string `json:"alphabet"`
	Symbols  []int    `json:"symbols"`
}

// timeRestart measures server.New over a prepared data directory — the
// restart path: WAL/snapshot replay plus dataset restoration. The served
// dataset is verified and the server closed off the clock.
func timeRestart(b *testing.B, dir string, wantSamples int) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, err := server.New(server.Options{Workers: 1, DataDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		rw := httptest.NewRecorder()
		srv.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/v1/datasets/ds-1", nil))
		if rw.Code != http.StatusOK {
			b.Fatalf("restored server: GET dataset = %d: %s", rw.Code, rw.Body)
		}
		var info struct {
			Samples int `json:"samples"`
		}
		if err := json.Unmarshal(rw.Body.Bytes(), &info); err != nil || info.Samples != wantSamples {
			b.Fatalf("restored dataset = %s (err %v), want %d samples", rw.Body, err, wantSamples)
		}
		srv.Close()
		b.StartTimer()
	}
}

// BenchmarkRestartRecovery measures what out-of-core segment storage
// saves at restart: "payload" restores a dataset from a legacy
// full-payload WAL record (JSON symbol arrays decoded, the symbolic
// database rebuilt and re-fingerprinted — the pre-segment cost),
// "segment" restores the same content from a metadata record plus a
// sealed columnar segment file, which is an mmap and a footer read. CI
// asserts segment restart is at least 5x faster than payload restart on
// any core count (the "always" speedup spec in
// .github/workflows/ci.yml).
func BenchmarkRestartRecovery(b *testing.B) {
	const (
		nSeries  = 4
		nSamples = 400000
	)
	sdb := appendBenchDB(b, nSeries, nSamples)
	created := time.Unix(0, 0).UTC()

	plant := func(b *testing.B, dir string, rec benchDatasetRecord) {
		b.Helper()
		l, _, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		data, err := json.Marshal(rec)
		if err != nil {
			b.Fatal(err)
		}
		if err := l.Append(store.Kind(1), data); err != nil { // kind: dataset added
			b.Fatal(err)
		}
		if err := l.Close(); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("payload", func(b *testing.B) {
		dir := b.TempDir()
		rec := benchDatasetRecord{ID: "ds-1", Name: "restart", CreatedAt: created, Shards: 1,
			Series: make([]benchSeriesJSON, nSeries)}
		for i, s := range sdb.Series {
			rec.Series[i] = benchSeriesJSON{Name: s.Name, Start: int64(s.Start), Step: int64(s.Step),
				Alphabet: s.Alphabet, Symbols: s.Symbols}
		}
		plant(b, dir, rec)
		timeRestart(b, dir, nSamples)
	})
	b.Run("segment", func(b *testing.B) {
		dir := b.TempDir()
		segDir := filepath.Join(dir, "segments")
		if err := os.MkdirAll(segDir, 0o755); err != nil {
			b.Fatal(err)
		}
		if _, err := store.WriteSegment(filepath.Join(segDir, "ds-1-g0.seg"), sdb, "bench-fp"); err != nil {
			b.Fatal(err)
		}
		plant(b, dir, benchDatasetRecord{ID: "ds-1", Name: "restart", CreatedAt: created, Shards: 1,
			Segments: []string{"ds-1-g0.seg"}, Fingerprint: "bench-fp", Samples: nSamples})
		timeRestart(b, dir, nSamples)
	})
}
