package ftpm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"ftpm/internal/core"
	"ftpm/internal/events"
	"ftpm/internal/mi"
)

// This file implements the prepared-dataset mining engine: the paper's
// FTPMfTS process staged explicitly as Prepare → Analyze → Mine.
//
//   - Prepare fixes the dataset geometry — the symbolic database, the
//     window split, the shard width — and owns the derived artifacts:
//     the (sharded) DSEQ conversion with its merged view and membership
//     masks, and the series-level and event-level pairwise NMI tables.
//   - Analyze is the lazy construction of those artifacts: each is built
//     at most once per Prepared, on first use, and memoized.
//   - Mine runs E-HTPGM or A-HTPGM against the cached artifacts; only
//     the thresholds (σ, δ, µ/density) and mining parameters vary per
//     call.
//
// One Prepared therefore serves any number of mining runs over the same
// dataset geometry: a second A-HTPGM job re-runs neither the DSEQ
// conversion nor the O(n²) pairwise NMI analysis, it only re-thresholds
// the cached table (AMIC-style reuse of one mutual-information analysis
// across many queries). MineSymbolic is a thin wrapper that prepares and
// mines once.

// cached is a build-once artifact slot. The first get builds (and may
// cache an error — builds are deterministic in the Prepared's inputs);
// concurrent getters block on the build instead of duplicating it.
type cached[T any] struct {
	once  sync.Once
	val   T
	err   error
	ready atomic.Bool
}

// get returns the artifact and whether it was served from cache (false
// exactly once: for the caller whose build populated the slot).
func (c *cached[T]) get(build func() (T, error)) (T, bool, error) {
	hit := true
	c.once.Do(func() {
		hit = false
		c.val, c.err = build()
		c.ready.Store(true)
	})
	return c.val, hit, c.err
}

// peek returns the artifact if — and only if — a build already completed
// successfully, without triggering one.
func (c *cached[T]) peek() (T, bool) {
	if c.ready.Load() && c.err == nil {
		return c.val, true
	}
	var zero T
	return zero, false
}

// preparedSeqs is the memoized DSEQ conversion of one Prepared: for
// sharded geometries the shard set plus its prepared merge view, for
// unsharded ones the single converted database.
type preparedSeqs struct {
	db   *SequenceDB       // merged (global-order) view; always set
	view *core.ShardedView // non-nil iff the geometry is sharded
}

// PreparedStats are the cumulative artifact-cache counters of one
// Prepared: how often each artifact class was built versus served from
// cache. Builds+Hits equals the number of accesses.
type PreparedStats struct {
	// DSEQBuilds / DSEQHits count accesses to the DSYB→DSEQ conversion
	// (including, for sharded geometries, the merged view and masks).
	DSEQBuilds int64 `json:"dseq_builds"`
	DSEQHits   int64 `json:"dseq_hits"`
	// NMIBuilds / NMIHits count accesses to the pairwise NMI tables,
	// series-level and event-level combined.
	NMIBuilds int64 `json:"nmi_builds"`
	NMIHits   int64 `json:"nmi_hits"`
}

// CacheInfo reports which prepared artifacts one mining run reused. A run
// that built an artifact itself (the first over its Prepared) reports
// false for it, as does a run that never touched it (NMI on exact runs).
type CacheInfo struct {
	// DSEQ is true when the run's sequence database came from the
	// Prepared's cache rather than a fresh DSYB→DSEQ conversion.
	DSEQ bool
	// NMI is true when the run is approximate and its pairwise NMI table
	// came from the Prepared's cache rather than a fresh computation.
	NMI bool
}

// Analysis memoizes the geometry-independent artifacts of one symbolic
// database: the series-level and event-level pairwise NMI tables. They
// depend only on the data — not on the window split, shard width, or any
// threshold — so one Analysis can back any number of Prepared handles
// over the same database (PrepareWith), the way a served registry keeps
// one analysis per dataset across all requested window geometries.
type Analysis struct {
	src SymbolSource

	pw  cached[*mi.Pairwise]
	epw cached[*mi.EventPairwise]
}

// NewAnalysis wraps a symbolic database for NMI-table sharing across
// Prepared handles. The tables build lazily on first use.
func NewAnalysis(sdb *SymbolicDB) *Analysis {
	if sdb == nil {
		return &Analysis{}
	}
	return &Analysis{src: sdb}
}

// NewAnalysisSource wraps any SymbolSource — the in-memory database or an
// out-of-core columnar view such as the server's mmap'd segments — for
// NMI-table sharing across Prepared handles. Mining through the wrapped
// source is byte-identical to mining the equivalent in-memory database.
func NewAnalysisSource(src SymbolSource) *Analysis { return &Analysis{src: src} }

// Prepared is a reusable mining handle over one dataset geometry: a
// symbolic database, a window split, and a shard width, fixed at Prepare
// time. It memoizes the expensive derived artifacts — the (sharded) DSEQ
// conversion and, through its Analysis, the pairwise NMI tables — so
// repeated Mine calls with different thresholds share them. All methods
// are safe for concurrent use; concurrent first accesses of an artifact
// block on one build instead of duplicating it.
type Prepared struct {
	src    SymbolSource
	split  SplitOptions
	shards int
	an     *Analysis

	// prev, when set by Advance, is the handle this one extends: the
	// first sequences() build converts incrementally against prev's
	// memoized conversion instead of from scratch, then drops the link so
	// retired generations become collectable. Guarded by prevMu (the
	// build clears it while an Advance may be walking the chain).
	prevMu sync.Mutex
	prev   *Prepared

	seq cached[*preparedSeqs]

	dseqBuilds, dseqHits atomic.Int64
	nmiBuilds, nmiHits   atomic.Int64
}

// Prepare builds a mining handle for one dataset geometry. The split
// geometry is validated eagerly; the expensive artifacts (DSEQ
// conversion, NMI tables) are built lazily on first use and then reused
// by every subsequent Mine. shards <= 1 prepares the unsharded engine;
// larger values partition the DSEQ round-robin exactly like
// Options.Shards.
func Prepare(sdb *SymbolicDB, split SplitOptions, shards int) (*Prepared, error) {
	return PrepareWith(NewAnalysis(sdb), split, shards)
}

// PrepareWith builds a mining handle that shares a previously created
// Analysis, so handles over different window geometries (or shard
// widths) of the same database reuse one set of NMI tables. The handle's
// own cache counters still account its accesses: a table built by a
// sibling handle counts as a hit here.
func PrepareWith(an *Analysis, split SplitOptions, shards int) (*Prepared, error) {
	if an == nil || an.src == nil {
		return nil, fmt.Errorf("ftpm: Prepare requires a symbolic database")
	}
	if err := split.Validate(an.src); err != nil {
		return nil, err
	}
	if shards < 1 {
		shards = 1
	}
	return &Prepared{src: an.src, split: split, shards: shards, an: an}, nil
}

// Shards returns the shard width the handle was prepared with (>= 1).
func (p *Prepared) Shards() int { return p.shards }

// takePrev claims and clears the delta-ancestor link.
func (p *Prepared) takePrev() *Prepared {
	p.prevMu.Lock()
	defer p.prevMu.Unlock()
	prev := p.prev
	p.prev = nil
	return prev
}

// peekPrev reads the delta-ancestor link without claiming it.
func (p *Prepared) peekPrev() *Prepared {
	p.prevMu.Lock()
	defer p.prevMu.Unlock()
	return p.prev
}

// extends validates that next is an in-place temporal extension of old:
// the same series (by position and name) on the same grid, each at least
// as long, with alphabets only appended to. The per-sample symbol prefix
// is a documented contract of the append path rather than a checked one —
// verifying it would re-read every old sample and erase the point of a
// delta conversion.
func extends(old, next SymbolSource) error {
	if next.NumSeries() != old.NumSeries() {
		return fmt.Errorf("series count changed (%d -> %d)", old.NumSeries(), next.NumSeries())
	}
	if next.Start() != old.Start() || next.Step() != old.Step() {
		return fmt.Errorf("sampling grid changed")
	}
	if next.Len() < old.Len() {
		return fmt.Errorf("database shrank (%d -> %d samples)", old.Len(), next.Len())
	}
	for i := 0; i < old.NumSeries(); i++ {
		name := old.SeriesName(i)
		if nn := next.SeriesName(i); nn != name {
			return fmt.Errorf("series %d renamed (%q -> %q)", i, name, nn)
		}
		oa, na := old.SeriesAlphabet(i), next.SeriesAlphabet(i)
		if len(na) < len(oa) {
			return fmt.Errorf("series %q alphabet shrank", name)
		}
		for j, a := range oa {
			if na[j] != a {
				return fmt.Errorf("series %q alphabet renumbered at %d (%q -> %q)", name, j, a, na[j])
			}
		}
	}
	return nil
}

// Advance derives a handle over next — an Analysis of a database that
// extends this handle's in time — with the same split geometry and shard
// width. The new handle's first DSEQ access converts incrementally: the
// window prefix untouched by the appended samples is shared by pointer
// with this handle's memoized conversion (which stays fully usable for
// in-flight mines), and for sharded geometries the L1 occurrence index is
// patched rather than rebuilt. The NMI tables are not carried over — they
// depend on every sample, so next starts with fresh ones.
//
// The delta path is an optimization, never a semantic: when nothing is
// reusable (this handle never converted, a NumWindows geometry whose
// window length moved, or an append that interned new symbols out of
// prefix order) the new handle silently falls back to a full conversion,
// and results are byte-identical either way.
func (p *Prepared) Advance(next *Analysis) (*Prepared, error) {
	np, err := PrepareWith(next, p.split, p.shards)
	if err != nil {
		return nil, err
	}
	if err := extends(p.src, next.src); err != nil {
		return nil, fmt.Errorf("ftpm: Advance: new database does not extend the prepared one: %v", err)
	}
	// Link to the nearest generation with a completed conversion, so a
	// chain of mine-less appends neither accumulates retained generations
	// nor loses the last actually-built artifacts.
	anc := p
	for anc != nil {
		if _, ok := anc.seq.peek(); ok {
			break
		}
		anc = anc.peekPrev()
	}
	np.prev = anc
	return np, nil
}

// Stats snapshots the cumulative cache counters of the handle.
func (p *Prepared) Stats() PreparedStats {
	return PreparedStats{
		DSEQBuilds: p.dseqBuilds.Load(),
		DSEQHits:   p.dseqHits.Load(),
		NMIBuilds:  p.nmiBuilds.Load(),
		NMIHits:    p.nmiHits.Load(),
	}
}

// sequences returns the memoized DSEQ conversion, building it on first
// use: an unsharded Convert for shard width 1, otherwise the sharded
// conversion plus its prepared merge view. A handle created by Advance
// converts incrementally against its ancestor's memoized conversion when
// one exists (sharing the stable window prefix by pointer and, for
// sharded geometries, patching the L1 index), and falls back to the full
// conversion otherwise.
func (p *Prepared) sequences() (*preparedSeqs, bool, error) {
	ps, hit, err := p.seq.get(func() (*preparedSeqs, error) {
		var memo *preparedSeqs
		var prevEnd Time
		if prev := p.takePrev(); prev != nil {
			if m, ok := prev.seq.peek(); ok {
				memo, prevEnd = m, prev.src.End()
			}
		}
		if p.shards <= 1 {
			var db *SequenceDB
			var err error
			if memo != nil && memo.view == nil {
				db, _, err = events.ConvertDelta(p.src, p.split, memo.db, prevEnd)
			} else {
				db, err = events.Convert(p.src, p.split)
			}
			if err != nil {
				return nil, err
			}
			if db.Size() == 0 {
				return nil, fmt.Errorf("ftpm: empty sequence database")
			}
			return &preparedSeqs{db: db}, nil
		}
		if memo != nil && memo.view != nil && len(memo.view.Shards) == p.shards {
			shards, stable, err := events.ConvertShardsDelta(p.src, p.split, p.shards, memo.view.Shards, prevEnd)
			if err != nil {
				return nil, err
			}
			view, err := core.PrepareShardsDelta(memo.view, shards, stable)
			if err != nil {
				return nil, err
			}
			return &preparedSeqs{db: view.Merged, view: view}, nil
		}
		shards, err := events.ConvertShards(p.src, p.split, p.shards)
		if err != nil {
			return nil, err
		}
		view, err := core.PrepareShards(shards)
		if err != nil {
			return nil, err
		}
		return &preparedSeqs{db: view.Merged, view: view}, nil
	})
	if err != nil {
		return nil, hit, err
	}
	if hit {
		p.dseqHits.Add(1)
	} else {
		p.dseqBuilds.Add(1)
	}
	return ps, hit, nil
}

// pairwise returns the memoized series-level NMI table of the shared
// Analysis.
func (p *Prepared) pairwise() (*mi.Pairwise, bool, error) {
	pw, hit, err := p.an.pw.get(func() (*mi.Pairwise, error) {
		return mi.ComputePairwise(p.src)
	})
	if err != nil {
		return nil, hit, err
	}
	if hit {
		p.nmiHits.Add(1)
	} else {
		p.nmiBuilds.Add(1)
	}
	return pw, hit, nil
}

// eventPairwise returns the memoized event-level NMI table of the shared
// Analysis.
func (p *Prepared) eventPairwise() (*mi.EventPairwise, bool, error) {
	epw, hit, err := p.an.epw.get(func() (*mi.EventPairwise, error) {
		return mi.ComputeEventPairwise(p.src)
	})
	if err != nil {
		return nil, hit, err
	}
	if hit {
		p.nmiHits.Add(1)
	} else {
		p.nmiBuilds.Add(1)
	}
	return epw, hit, nil
}

// analyze resolves the approximate options against the memoized pairwise
// tables: it derives µ (from Mu directly or from Density against the
// cached table) and installs the thresholded correlation graph into the
// mining config. It reports whether the NMI table came from cache. The
// selector is validated before any table access, so malformed options
// never trigger the O(n²) analysis.
func (p *Prepared) analyze(a *ApproxOptions, cfg *core.Config, out *Result) (bool, error) {
	if err := mi.ValidateSelector(a.Mu, a.Density); err != nil {
		// The façade's documented wording, kept stable across the
		// refactor (the internal error carries the "mi:" prefix).
		return false, fmt.Errorf("ftpm: ApproxOptions requires exactly one of Mu or Density")
	}
	if a.EventLevel {
		epw, hit, err := p.eventPairwise()
		if err != nil {
			return hit, err
		}
		mu, err := mi.ResolveMu(epw, a.Mu, a.Density)
		if err != nil {
			return hit, err
		}
		g, err := epw.Graph(mu)
		if err != nil {
			return hit, err
		}
		cfg.EventFilter = g
		out.EventGraph = g
		out.Mu = mu
		return hit, nil
	}
	pw, hit, err := p.pairwise()
	if err != nil {
		return hit, err
	}
	mu, err := mi.ResolveMu(pw, a.Mu, a.Density)
	if err != nil {
		return hit, err
	}
	g, err := pw.Graph(mu)
	if err != nil {
		return hit, err
	}
	cfg.Filter = g
	out.Graph = g
	out.Mu = mu
	return hit, nil
}

// Mine runs one FTPMfTS job against the prepared artifacts: E-HTPGM, or
// A-HTPGM when opt.Approx is set (series-level or event-level). Results
// are byte-identical to MineSymbolic with the same thresholds over the
// handle's geometry. The Prepared owns the window geometry and shard
// width: leave opt.WindowLength/NumWindows/Overlap/Shards zero, or set
// them to the prepared values — any other value is rejected rather than
// silently ignored. Result.Cache reports which artifacts the run reused.
//
// Cancelling ctx aborts the mining phase between verification units and
// returns ctx.Err(); a nil ctx is treated as context.Background().
func (p *Prepared) Mine(ctx context.Context, opt Options) (*Result, error) {
	if s := opt.splitOptions(); s != (SplitOptions{}) && s != p.split {
		return nil, fmt.Errorf("ftpm: Options geometry %+v conflicts with the prepared geometry %+v", s, p.split)
	}
	// Non-positive Shards means unset (Prepare clamps the same way, so
	// MineSymbolic with Shards <= 1 keeps its unsharded behavior).
	if opt.Shards > 0 && opt.Shards != p.shards {
		return nil, fmt.Errorf("ftpm: Options.Shards %d conflicts with the prepared shard width %d", opt.Shards, p.shards)
	}
	cfg := opt.coreConfig()
	out := &Result{}
	if a := opt.Approx; a != nil {
		hit, err := p.analyze(a, &cfg, out)
		if err != nil {
			return nil, err
		}
		out.Cache.NMI = hit
	}

	ps, seqHit, err := p.sequences()
	if err != nil {
		return nil, err
	}
	out.Cache.DSEQ = seqHit
	out.DB = ps.db

	var res *core.Result
	if ps.view != nil {
		res, err = core.MineShardedView(ctx, ps.view, cfg)
	} else {
		res, err = core.Mine(ctx, ps.db, cfg)
	}
	if err != nil {
		return nil, err
	}
	out.Singles = res.Singles
	out.Patterns = res.Patterns
	out.Stats = res.Stats
	return out, nil
}
