package ftpm

import (
	"context"
	"fmt"
	"strings"

	"ftpm/internal/core"
	"ftpm/internal/temporal"
)

// ApproxOptions enables A-HTPGM (§V). Exactly one of Mu or Density selects
// the MI threshold.
type ApproxOptions struct {
	// Mu is the NMI threshold µ in (0,1] (Def 5.4).
	Mu float64
	// Density chooses µ via the expected correlation-graph density
	// (Def 5.6) instead: 0.6 keeps 60% of the possible edges.
	Density float64
	// EventLevel switches to event-granularity pruning — the paper's
	// stated future work (§VII): NMI is computed between event indicator
	// series and the threshold applies to individual event pairs instead
	// of whole series. Finer pruning, higher NMI setup cost (quadratic in
	// the number of events rather than series).
	EventLevel bool
}

// Options parameterizes an end-to-end mining run.
type Options struct {
	// MinSupport is the relative support threshold sigma in (0,1].
	MinSupport float64
	// MinConfidence is the confidence threshold delta in [0,1].
	MinConfidence float64

	// Epsilon is the relation buffer ε; MinOverlap the minimal Overlap
	// duration d_o (Defs 3.6-3.8). Zero values mean ε=0, d_o=1 tick.
	Epsilon    Duration
	MinOverlap Duration

	// TMax is the maximal pattern duration t_max (0 = unbounded within a
	// sequence window).
	TMax Duration
	// MaxPatternSize bounds the number of events per pattern (0 =
	// unbounded).
	MaxPatternSize int

	// Window geometry for MineSymbolic: either WindowLength (ticks) or
	// NumWindows, plus the overlap t_ov (§IV-B2). Ignored by Mine, which
	// takes an already-built SequenceDB.
	WindowLength Duration
	NumWindows   int
	Overlap      Duration

	// Approx, when non-nil, runs A-HTPGM instead of E-HTPGM.
	Approx *ApproxOptions

	// Shards partitions the sequence database round-robin into this many
	// shards (0 or 1 = unsharded): the DSYB→DSEQ conversion and L1/L2
	// support counting then run shard-local and merge deterministically,
	// with results byte-identical to the unsharded run. Only honoured by
	// MineSymbolic (Mine takes a prebuilt SequenceDB; use MineSharded for
	// prebuilt shards).
	Shards int

	// Pruning selects the E-HTPGM pruning ablation; the zero value
	// applies all pruning techniques.
	Pruning PruningMode
	// KeepGraph retains the Hierarchical Pattern Graph on the result.
	KeepGraph bool
	// Workers shards candidate verification over goroutines (0 or 1 =
	// serial); results are identical to serial runs.
	Workers int
	// WorkersFunc, when non-nil, renegotiates the worker count at each
	// level boundary of the mining loop: it is called on the mining
	// goroutine with the level about to be mined and its return value
	// replaces the effective worker count for that level (negative keeps
	// the current grant). Results are byte-identical across any sequence
	// of grants; schedulers use this to rebalance a running job's
	// parallelism as other jobs arrive or finish.
	WorkersFunc func(level int) int

	// Progress, when non-nil, is called on the mining goroutine after each
	// level of the pattern graph completes, with that level's counters.
	// Long-running callers (e.g. the ftpm-serve job manager) use it to
	// report per-level progress; the callback must return quickly.
	Progress func(LevelStats)
}

func (o Options) coreConfig() core.Config {
	rel := temporal.Config{}
	if o.Epsilon != 0 || o.MinOverlap != 0 {
		rel = temporal.Config{Epsilon: o.Epsilon, MinOverlap: o.MinOverlap}
		if rel.MinOverlap == 0 {
			rel.MinOverlap = 1
		}
	}
	return core.Config{
		MinSupport:    o.MinSupport,
		MinConfidence: o.MinConfidence,
		Relations:     rel,
		TMax:          o.TMax,
		MaxK:          o.MaxPatternSize,
		Pruning:       o.Pruning,
		KeepGraph:     o.KeepGraph,
		Workers:       o.Workers,
		WorkersFunc:   o.WorkersFunc,
		Progress:      o.Progress,
	}
}

func (o Options) splitOptions() SplitOptions {
	return SplitOptions{WindowLength: o.WindowLength, NumWindows: o.NumWindows, Overlap: o.Overlap}
}

// Result is the outcome of a mining run.
type Result struct {
	// Singles lists the frequent single events.
	Singles []EventInfo
	// Patterns lists the frequent temporal patterns (k >= 2) in
	// deterministic order.
	Patterns []PatternInfo
	// Stats carries the per-level mining counters.
	Stats Stats
	// DB is the temporal sequence database that was mined; Describe uses
	// it to render sample occurrences.
	DB *SequenceDB
	// Graph is the correlation graph of an A-HTPGM run (nil for exact),
	// and Mu the MI threshold used. EventGraph is set instead of Graph
	// when event-level pruning was requested.
	Graph      *CorrelationGraph
	EventGraph *EventCorrelationGraph
	Mu         float64
	// Cache reports which prepared-dataset artifacts this run reused; it
	// is all-false for runs that built everything themselves (any first
	// run over a Prepared, hence every plain MineSymbolic call).
	Cache CacheInfo
}

// Mine runs E-HTPGM (exact) over an already-built sequence database.
// Options.Approx is rejected here — A-HTPGM needs the symbolic database
// for its mutual-information analysis; use MineSymbolic.
//
// Cancelling ctx aborts the run between verification units and returns
// ctx.Err(); a nil ctx is treated as context.Background().
func Mine(ctx context.Context, db *SequenceDB, opt Options) (*Result, error) {
	if opt.Approx != nil {
		return nil, fmt.Errorf("ftpm: Mine is exact-only; use MineSymbolic for A-HTPGM")
	}
	res, err := core.Mine(ctx, db, opt.coreConfig())
	if err != nil {
		return nil, err
	}
	return &Result{Singles: res.Singles, Patterns: res.Patterns, Stats: res.Stats, DB: db}, nil
}

// MineSharded runs E-HTPGM (exact) over an already-sharded sequence
// database — shards as produced by BuildShardedSequences or
// SequenceDB.ShardRoundRobin, sharing one vocabulary. L1/L2 support
// counting runs shard-local before a deterministic merge; the mined
// patterns and supports are byte-identical to Mine over the merged
// database. Options.Approx is rejected here for the same reason as in
// Mine; use MineSymbolic with Options.Shards for sharded A-HTPGM.
func MineSharded(ctx context.Context, shards []*SequenceDB, opt Options) (*Result, error) {
	if opt.Approx != nil {
		return nil, fmt.Errorf("ftpm: MineSharded is exact-only; use MineSymbolic with Options.Shards for A-HTPGM")
	}
	res, merged, err := core.MineSharded(ctx, shards, opt.coreConfig())
	if err != nil {
		return nil, err
	}
	return &Result{Singles: res.Singles, Patterns: res.Patterns, Stats: res.Stats, DB: merged}, nil
}

// MineSymbolic runs the full FTPMfTS process on a symbolic database:
// conversion to DSEQ followed by E-HTPGM, or A-HTPGM when Options.Approx
// is set. It is a thin wrapper over a one-shot Prepared; callers mining
// the same database and geometry repeatedly should Prepare once and call
// Prepared.Mine per threshold setting to reuse the conversion and NMI
// artifacts.
//
// Cancelling ctx aborts the mining phase between verification units and
// returns ctx.Err(); a nil ctx is treated as context.Background().
func MineSymbolic(ctx context.Context, sdb *SymbolicDB, opt Options) (*Result, error) {
	p, err := Prepare(sdb, opt.splitOptions(), opt.Shards)
	if err != nil {
		return nil, err
	}
	return p.Mine(ctx, opt)
}

// Accuracy returns the fraction of the exact result's patterns that the
// approximate result retained (Table IX's metric).
func Accuracy(approx, exact *Result) float64 {
	ex := make(map[string]bool, len(exact.Patterns))
	for _, p := range exact.Patterns {
		ex[p.Pattern.Key()] = true
	}
	if len(ex) == 0 {
		return 1
	}
	hit := 0
	for _, p := range approx.Patterns {
		if ex[p.Pattern.Key()] {
			hit++
		}
	}
	return float64(hit) / float64(len(ex))
}

// Describe renders a mined pattern with event names and, when a sample
// occurrence is available, the concrete intervals — the paper's Table VI
// style, e.g. "([06:00,07:00] Kitchen=On) ≽ ([06:01,06:45] Toaster=On)".
func (r *Result) Describe(p PatternInfo) string {
	if r.DB == nil || p.SampleSeq < 0 || p.SampleSeq >= len(r.DB.Sequences) || len(p.Sample) != p.Pattern.K() {
		return p.Pattern.FormatChain(r.DB.Vocab)
	}
	seq := r.DB.Sequences[p.SampleSeq]
	var sb strings.Builder
	for i, e := range p.Pattern.Events {
		if i > 0 {
			sb.WriteString(" " + p.Pattern.Relation(i-1, i).Symbol() + " ")
		}
		ins := seq.Instances[p.Sample[i]]
		fmt.Fprintf(&sb, "([%s,%s] %s)", clockOf(ins.Start), clockOf(ins.End), r.DB.Vocab.Name(e))
	}
	return sb.String()
}

// clockOf renders ticks as hh:mm within the day (ticks are treated as
// seconds); timestamps beyond the first day carry a day prefix so
// boundary-clipped intervals stay unambiguous.
func clockOf(t Time) string {
	day := t / 86400
	t %= 86400
	if t < 0 {
		t += 86400
		day--
	}
	if day > 0 {
		return fmt.Sprintf("d%d %02d:%02d", day, t/3600, (t%3600)/60)
	}
	return fmt.Sprintf("%02d:%02d", t/3600, (t%3600)/60)
}

// Maximal returns the patterns not contained in any other mined pattern —
// the compact frontier of the result (every pruned pattern is implied by
// a maximal one).
func (r *Result) Maximal() []PatternInfo {
	cr := core.Result{Patterns: r.Patterns}
	return cr.Maximal()
}
