package ftpm

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON export of mining results: a stable, self-describing document with
// event names resolved through the vocabulary, so downstream tools do not
// need the internal event ids.

// ResultJSON is the document shape of Result.ExportJSON.
type ResultJSON struct {
	Sequences       int           `json:"sequences"`
	AbsoluteSupport int           `json:"absolute_support"`
	Mu              float64       `json:"mu,omitempty"`
	Singles         []SingleJSON  `json:"frequent_events"`
	Patterns        []PatternJSON `json:"patterns"`
}

// SingleJSON is one frequent single event.
type SingleJSON struct {
	Event      string  `json:"event"`
	Support    int     `json:"support"`
	RelSupport float64 `json:"rel_support"`
}

// TripleJSON is one (event, relation, event) element of a pattern.
type TripleJSON struct {
	A        string `json:"a"`
	Relation string `json:"relation"` // "follow" | "contain" | "overlap"
	B        string `json:"b"`
}

// IntervalJSON is a sample instance interval.
type IntervalJSON struct {
	Event string `json:"event"`
	Start int64  `json:"start"`
	End   int64  `json:"end"`
}

// PatternJSON is one mined temporal pattern.
type PatternJSON struct {
	K          int            `json:"k"`
	Events     []string       `json:"events"` // chronological role order
	Triples    []TripleJSON   `json:"triples"`
	Support    int            `json:"support"`
	RelSupport float64        `json:"rel_support"`
	Confidence float64        `json:"confidence"`
	Sample     []IntervalJSON `json:"sample,omitempty"`
}

func relationName(r Relation) string {
	switch r {
	case Follow:
		return "follow"
	case Contain:
		return "contain"
	case Overlap:
		return "overlap"
	}
	return "none"
}

// Document builds the exportable representation of the result.
func (r *Result) Document() ResultJSON {
	doc := ResultJSON{
		Sequences:       r.Stats.Sequences,
		AbsoluteSupport: r.Stats.AbsoluteSupport,
		Mu:              r.Mu,
	}
	vocab := r.DB.Vocab
	for _, s := range r.Singles {
		doc.Singles = append(doc.Singles, SingleJSON{
			Event:      vocab.Name(s.Event),
			Support:    s.Support,
			RelSupport: s.RelSupport,
		})
	}
	for _, p := range r.Patterns {
		pj := PatternJSON{
			K:          p.Pattern.K(),
			Support:    p.Support,
			RelSupport: p.RelSupport,
			Confidence: p.Confidence,
		}
		for _, e := range p.Pattern.Events {
			pj.Events = append(pj.Events, vocab.Name(e))
		}
		for _, t := range p.Pattern.Triples() {
			pj.Triples = append(pj.Triples, TripleJSON{
				A:        vocab.Name(t.A),
				Relation: relationName(t.Rel),
				B:        vocab.Name(t.B),
			})
		}
		if p.SampleSeq >= 0 && p.SampleSeq < len(r.DB.Sequences) && len(p.Sample) == p.Pattern.K() {
			seq := r.DB.Sequences[p.SampleSeq]
			for i, idx := range p.Sample {
				ins := seq.Instances[idx]
				pj.Sample = append(pj.Sample, IntervalJSON{
					Event: vocab.Name(p.Pattern.Events[i]),
					Start: ins.Start,
					End:   ins.End,
				})
			}
		}
		doc.Patterns = append(doc.Patterns, pj)
	}
	return doc
}

// ExportJSON writes the result as an indented JSON document.
func (r *Result) ExportJSON(w io.Writer) error {
	if r.DB == nil {
		return fmt.Errorf("ftpm: result has no sequence database attached")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Document())
}
