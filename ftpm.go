// Package ftpm is a Go implementation of FTPMfTS — Frequent Temporal
// Pattern Mining from Time Series — as described in:
//
//	Van Long Ho, Nguyen Ho, Torben Bach Pedersen:
//	"Efficient Temporal Pattern Mining in Big Time Series Using Mutual
//	Information", PVLDB 2021 (arXiv:2010.03653).
//
// The library covers the complete end-to-end process of the paper:
//
//  1. Data transformation: raw time series are encoded into symbolic
//     representations (threshold or quantile mapping functions, Def 3.2)
//     and split into a temporal sequence database DSEQ with optional
//     window overlap so patterns crossing window boundaries are preserved
//     (§IV-B, Fig 3).
//  2. Exact mining: E-HTPGM, the Hierarchical Temporal Pattern Graph
//     Mining algorithm, finds all temporal patterns — lists of pairwise
//     Follow / Contain / Overlap relations between event instances —
//     whose support and confidence meet the thresholds (§IV, Alg 1),
//     using bitmap indexes, Apriori pruning (Lemmas 2-3) and
//     transitivity pruning (Lemmas 4-7).
//  3. Approximate mining: A-HTPGM prunes uncorrelated time series up
//     front using normalized mutual information and a correlation graph,
//     trading a bounded accuracy loss for order-of-magnitude speedups
//     (§V, Alg 2, Theorem 1).
//
// # Quick start
//
//	series := []*ftpm.TimeSeries{kitchen, toaster, microwave}
//	sdb, _ := ftpm.Symbolize(series, func(string) ftpm.Symbolizer {
//		return ftpm.OnOff(0.05) // On when the reading is >= 0.05
//	})
//	res, _ := ftpm.MineSymbolic(ctx, sdb, ftpm.Options{
//		MinSupport:    0.2,
//		MinConfidence: 0.5,
//		NumWindows:    24,
//	})
//	for _, p := range res.Patterns {
//		fmt.Println(res.Describe(p))
//	}
//
// Setting Options.Approx enables A-HTPGM; see examples/ for end-to-end
// programs and cmd/ftpm for the command-line interface.
//
// # Prepared datasets
//
// The process above is staged — Prepare (fix the dataset geometry),
// Analyze (derive the DSEQ conversion and pairwise NMI tables), Mine
// (threshold and search) — and the expensive middle stage depends only
// on the data and geometry, never on the thresholds. Callers mining the
// same database repeatedly should build the stages' artifacts once:
//
//	prep, _ := ftpm.Prepare(sdb, ftpm.SplitOptions{NumWindows: 24}, shards)
//	for _, sigma := range []float64{0.2, 0.3, 0.5} {
//		res, _ := prep.Mine(ctx, ftpm.Options{
//			MinSupport: sigma, MinConfidence: 0.5,
//			Approx:     &ftpm.ApproxOptions{Density: 0.6},
//		})
//		// res.Cache reports which artifacts the run reused.
//	}
//
// A Prepared memoizes the sharded DSEQ conversion (with its merged view)
// and the series- and event-level NMI tables; every Mine — exact or
// approximate, any thresholds — reuses them, so repeat A-HTPGM runs skip
// the O(n²) mutual-information analysis entirely. MineSymbolic is a thin
// wrapper over a one-shot Prepared.
//
// When the database grows — new samples appended to every series —
// Prepared.Advance carries a handle forward instead of starting over:
//
//	next, _ := prep.Advance(ftpm.NewAnalysis(extendedSDB))
//
// Advance validates that the new database is a strict temporal extension
// of the old one (same series names and grid, alphabets extended but
// never renumbered), reuses every window the appended samples cannot
// have touched, re-cuts only the unstable suffix, and patches the L1
// support index for just those sequences; the NMI tables are rebuilt
// lazily, since appended samples change every pairwise score. Mining an
// advanced handle is byte-identical to a cold Prepare of the extended
// database, and the original handle keeps serving its own view.
package ftpm

import (
	"ftpm/internal/core"
	"ftpm/internal/events"
	"ftpm/internal/mi"
	"ftpm/internal/pattern"
	"ftpm/internal/temporal"
	"ftpm/internal/timeseries"
)

// Re-exported substrate types. They live in internal packages; the
// aliases below are the supported way to name them from outside.
type (
	// Time is a point in time in ticks (the library does not impose a
	// unit; the examples use seconds).
	Time = temporal.Time
	// Duration is a span of ticks.
	Duration = temporal.Duration
	// Interval is a closed-open time interval.
	Interval = temporal.Interval
	// Relation is one of the temporal relations Follow, Contain, Overlap.
	Relation = temporal.Relation

	// TimeSeries is a regularly sampled numeric series (Def 3.1).
	TimeSeries = timeseries.Series
	// Symbolizer maps raw values to symbols (Def 3.2).
	Symbolizer = timeseries.Symbolizer
	// SymbolicSeries is a symbolic representation of one series.
	SymbolicSeries = timeseries.SymbolicSeries
	// SymbolicDB is the symbolic database DSYB (Def 3.3).
	SymbolicDB = timeseries.SymbolicDB
	// SymbolSource is a read-only columnar view of a symbolic database:
	// the surface the DSEQ conversion and the NMI analysis consume.
	// *SymbolicDB implements it, as do out-of-core views such as the
	// server's mmap'd segment files; mining through any SymbolSource
	// over the same data is byte-identical.
	SymbolSource = timeseries.SymbolSource
	// Run is one maximal symbol run of a symbolic series, as yielded by
	// SymbolSource.AppendRuns.
	Run = timeseries.Run

	// EventID identifies an interned (series, symbol) event.
	EventID = events.EventID
	// Vocab interns events.
	Vocab = events.Vocab
	// Instance is one occurrence of an event (Def 3.5).
	Instance = events.Instance
	// Sequence is a temporal sequence (Def 3.9).
	Sequence = events.Sequence
	// SequenceDB is the temporal sequence database DSEQ (Def 3.10).
	SequenceDB = events.DB
	// SplitOptions controls the DSYB -> DSEQ conversion (§IV-B2).
	SplitOptions = events.SplitOptions

	// Pattern is a temporal pattern (Def 3.11).
	Pattern = pattern.Pattern
	// PatternInfo is one mined pattern with support and confidence.
	PatternInfo = core.PatternInfo
	// EventInfo is one frequent single event.
	EventInfo = core.EventInfo
	// Stats carries the per-level mining counters.
	Stats = core.Stats
	// LevelStats carries the counters of one mined level; Options.Progress
	// receives one per completed level.
	LevelStats = core.LevelStats
	// PruningMode selects the E-HTPGM pruning ablation.
	PruningMode = core.PruningMode

	// CorrelationGraph is the undirected NMI graph of A-HTPGM (Def 5.5).
	CorrelationGraph = mi.Graph
	// EventCorrelationGraph is the event-level NMI graph of the
	// future-work extension (ApproxOptions.EventLevel).
	EventCorrelationGraph = mi.EventGraph
)

// Relation constants (Defs 3.6-3.8).
const (
	Follow  = temporal.Follow
	Contain = temporal.Contain
	Overlap = temporal.Overlap
)

// AllenRelation exposes the full Allen taxonomy (diagnostic extension;
// the miner uses the paper's simplified three-relation model).
type AllenRelation = temporal.AllenRelation

// Allen relation constants.
const (
	AllenBefore   = temporal.AllenBefore
	AllenMeets    = temporal.AllenMeets
	AllenOverlaps = temporal.AllenOverlaps
	AllenStarts   = temporal.AllenStarts
	AllenDuring   = temporal.AllenDuring
	AllenFinishes = temporal.AllenFinishes
	AllenEquals   = temporal.AllenEquals
)

// ClassifyAllen returns the Allen relation between two intervals in
// canonical order, using buffer epsilon; Simplify() maps it onto the
// mining model.
func ClassifyAllen(a, b Interval, epsilon Duration) AllenRelation {
	cfg := temporal.Config{Epsilon: epsilon, MinOverlap: epsilon + 1}
	return cfg.ClassifyAllen(a, b)
}

// Pruning modes of E-HTPGM (Figs 6-7 ablation).
const (
	PruneAll     = core.PruneAll
	PruneNone    = core.PruneNone
	PruneApriori = core.PruneApriori
	PruneTrans   = core.PruneTrans
)

// NewTimeSeries constructs a numeric time series sampled every step ticks
// from start.
func NewTimeSeries(name string, start Time, step Duration, values []float64) (*TimeSeries, error) {
	return timeseries.NewSeries(name, start, step, values)
}

// OnOff returns the two-symbol threshold mapper of the paper's energy
// datasets: "On" when the value is at or above the threshold, "Off"
// otherwise.
func OnOff(threshold float64) Symbolizer { return timeseries.NewOnOff(threshold) }

// Quantile returns a multi-state mapper whose cut points are the given
// percentiles of the observed values (§VI-A2), e.g. 5 labels with
// percentiles 10, 25, 50, 75.
func Quantile(values []float64, percentiles []float64, labels []string) (Symbolizer, error) {
	return timeseries.NewQuantileSymbolizer(values, percentiles, labels)
}

// ParseSymbols builds a symbolic series from whitespace-separated symbol
// names over the given alphabet.
func ParseSymbols(name string, start Time, step Duration, alphabet []string, row string) (*SymbolicSeries, error) {
	return timeseries.ParseSymbols(name, start, step, alphabet, row)
}

// Symbolize encodes a set of aligned numeric series into a symbolic
// database, choosing each series' mapping function by name.
func Symbolize(series []*TimeSeries, mapperFor func(name string) Symbolizer) (*SymbolicDB, error) {
	out := make([]*SymbolicSeries, len(series))
	for i, s := range series {
		out[i] = s.Symbolize(mapperFor(s.Name))
	}
	return timeseries.NewSymbolicDB(out...)
}

// NewSymbolicDB wraps aligned symbolic series into a database.
func NewSymbolicDB(series ...*SymbolicSeries) (*SymbolicDB, error) {
	return timeseries.NewSymbolicDB(series...)
}

// BuildSequences converts a symbolic database into the temporal sequence
// database DSEQ (§IV-B2).
func BuildSequences(db SymbolSource, opt SplitOptions) (*SequenceDB, error) {
	return events.Convert(db, opt)
}

// BuildShardedSequences converts a symbolic database into K round-robin
// shards of DSEQ: window i of the split goes to shard i%K, and the
// expensive window cutting runs concurrently per shard. The shards share
// one vocabulary and feed MineSharded; merging them (MergeShards)
// reconstructs BuildSequences' output exactly.
func BuildShardedSequences(db SymbolSource, opt SplitOptions, shards int) ([]*SequenceDB, error) {
	return events.ConvertShards(db, opt, shards)
}

// MergeShards reassembles round-robin shards into one sequence database,
// returning it together with each shard's local→global index map.
func MergeShards(shards []*SequenceDB) (*SequenceDB, [][]int, error) {
	return events.MergeShards(shards)
}

// NMI returns the normalized mutual information of two aligned symbolic
// series (Def 5.3).
func NMI(x, y *SymbolicSeries) (float64, error) { return mi.NMI(x, y) }

// CorrelationGraphAt computes the correlation graph of the database at MI
// threshold mu (Def 5.5).
func CorrelationGraphAt(db SymbolSource, mu float64) (*CorrelationGraph, error) {
	pw, err := mi.ComputePairwise(db)
	if err != nil {
		return nil, err
	}
	return pw.Graph(mu)
}

// CorrelationGraphByDensity computes the correlation graph whose edge
// count realizes the expected density (Def 5.6) — the paper's
// "µ = X% of edges" settings. It returns the graph and the chosen µ.
// Density 0 is the degenerate sweep endpoint: µ lands just above the
// largest pairwise NMI, leaving the graph empty unless perfectly
// correlated pairs force µ's ceiling of 1.
func CorrelationGraphByDensity(db SymbolSource, density float64) (*CorrelationGraph, float64, error) {
	pw, err := mi.ComputePairwise(db)
	if err != nil {
		return nil, 0, err
	}
	// Resolved directly rather than through mi.ResolveMu (which rejects
	// density 0 — a mining run needs a positive µ selector) so the full
	// 0..100% sweep stays usable here; the clamp mirrors ResolveMu's
	// (µ ≤ 1, Def 5.4).
	mu, err := pw.MuForDensity(density)
	if err != nil {
		return nil, 0, err
	}
	if mu > 1 {
		mu = 1
	}
	g, err := pw.Graph(mu)
	if err != nil {
		return nil, 0, err
	}
	return g, mu, nil
}

// ConfidenceLowerBound evaluates Theorem 1: the guaranteed DSEQ confidence
// of a frequent event pair of µ-correlated series, given the support
// threshold sigma, the pair's maximum DSYB support sigmaM, and the
// alphabet size nx.
func ConfidenceLowerBound(sigma, sigmaM, mu float64, nx int) (float64, error) {
	return mi.ConfidenceLowerBound(sigma, sigmaM, mu, nx)
}
