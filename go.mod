module ftpm

go 1.21
