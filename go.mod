module ftpm

go 1.22.0

// Pinned at the exact revision vendored under vendor/golang.org/x/tools
// (the go/analysis framework behind cmd/ftpm-lint). The tree builds in
// vendor mode, so the pin and vendor/modules.txt are the source of truth.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
