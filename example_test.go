package ftpm_test

import (
	"context"
	"fmt"

	"ftpm"
)

// ExampleMineSymbolic mines the beginning of the paper's Table I example:
// two appliances whose activations nest (K contains T).
func ExampleMineSymbolic() {
	k, _ := ftpm.ParseSymbols("K", 0, 300, []string{"Off", "On"},
		"On On On On Off Off Off On On Off Off Off")
	t, _ := ftpm.ParseSymbols("T", 0, 300, []string{"Off", "On"},
		"Off On On On Off Off Off On On Off Off Off")
	sdb, _ := ftpm.NewSymbolicDB(k, t)

	res, _ := ftpm.MineSymbolic(context.Background(), sdb, ftpm.Options{
		MinSupport:     1.0, // in every sequence
		MinConfidence:  1.0,
		NumWindows:     2,
		MaxPatternSize: 2,
	})
	for _, p := range res.Patterns {
		if p.Pattern.K() == 2 &&
			res.DB.Vocab.Name(p.Pattern.Events[0]) == "K=On" &&
			res.DB.Vocab.Name(p.Pattern.Events[1]) == "T=On" {
			fmt.Println(p.Pattern.FormatChain(res.DB.Vocab))
		}
	}
	// Output:
	// K=On ≽ T=On
}

// ExampleNMI reproduces the paper's §V-A computation: the normalized
// mutual information between the Kitchen and Toaster series of Table I.
func ExampleNMI() {
	k, _ := ftpm.ParseSymbols("K", 0, 300, []string{"Off", "On"},
		"On On On On Off Off Off On On Off Off Off Off Off Off On On On Off Off Off Off On On On Off Off On On Off Off On On On Off Off")
	t, _ := ftpm.ParseSymbols("T", 0, 300, []string{"Off", "On"},
		"Off On On On Off Off Off On On Off Off On On Off Off On On On Off Off Off Off On On On Off Off On On Off Off Off On On On Off")
	v, _ := ftpm.NMI(k, t)
	fmt.Printf("NMI(K;T) = %.2f\n", v)
	// Output:
	// NMI(K;T) = 0.42
}

// ExampleConfidenceLowerBound evaluates Theorem 1 at the paper's K/T
// operating point.
func ExampleConfidenceLowerBound() {
	lb, _ := ftpm.ConfidenceLowerBound(15.0/36, 18.0/36, 1.0, 2)
	fmt.Printf("LB(µ=1) = %.3f\n", lb)
	// Output:
	// LB(µ=1) = 0.714
}

// ExampleOnOff shows the paper's §III-A symbolization example.
func ExampleOnOff() {
	x, _ := ftpm.NewTimeSeries("X", 0, 1, []float64{1.61, 1.21, 0.41, 0.0})
	s := x.Symbolize(ftpm.OnOff(0.5))
	for i := 0; i < s.Len(); i++ {
		fmt.Print(s.SymbolAt(i), " ")
	}
	fmt.Println()
	// Output:
	// On On Off Off
}
